#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/trajstore.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/serialization.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

/// \file snapshot_format_test.cc
/// Durable-snapshot format coverage: golden-file byte-stability (a fresh
/// Save must reproduce the checked-in fixture bit for bit), and the
/// restart guarantee — a snapshot Save'd, then OpenSnapshot'd from the
/// golden written by an earlier process, serves STRQ (all modes), window,
/// and kNN results byte-identical to the in-memory Seal(), at 1 and 4
/// threads.
///
/// Regenerating fixtures after an INTENTIONAL format change:
///   PPQ_UPDATE_GOLDEN=1 ctest --test-dir build -R SnapshotGolden
/// then commit tests/golden/ and bump the relevant format version.

namespace ppq::core {
namespace {

using test::ReadFileBytes;
using test::TempPath;
using test::WriteFileBytes;

std::string GoldenPath(const char* name) {
  return std::string(PPQ_TEST_GOLDEN_DIR) + "/" + name;
}

bool UpdateGolden() { return std::getenv("PPQ_UPDATE_GOLDEN") != nullptr; }

/// The fixed dataset every golden fixture is generated from. Any change
/// here invalidates the fixtures — regenerate via PPQ_UPDATE_GOLDEN.
TrajectoryDataset GoldenDataset() {
  return test::MakePortoDataset({24, 40, 12, 40, 2026});
}

constexpr StrqMode kAllModes[] = {StrqMode::kApproximate,
                                  StrqMode::kLocalSearch, StrqMode::kExact};

/// Serve the full mixed workload from \p snapshot and \p reference (the
/// in-memory seal) and require byte-identical results at 1 and 4 threads.
void ExpectServesIdentically(const SnapshotPtr& loaded,
                             const SnapshotPtr& reference,
                             const TrajectoryDataset& data, double cell_size,
                             const std::string& label) {
  Rng rng(17);
  const auto queries = SampleQueries(data, 50, &rng);
  const auto windows = test::SampleWindows(data, 25, &rng);
  constexpr size_t kK = 5;
  // The serving stack owns its verification data (shared_ptr).
  const auto raw = std::make_shared<const TrajectoryDataset>(data);

  // The full mixed request stream: every request type x StrqMode.
  std::vector<QueryRequest> requests;
  for (const StrqMode mode : kAllModes) {
    for (const QuerySpec& q : queries) requests.push_back(StrqRequest{q, mode});
    for (const WindowSpec& w : windows) {
      requests.push_back(WindowRequest{w, mode});
    }
  }
  for (const QuerySpec& q : queries) requests.push_back(KnnRequest{q, kK});

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    QueryService::Options options;
    options.num_threads = threads;
    options.raw = raw;
    options.cell_size = cell_size;
    QueryService expected(reference, options);
    QueryService actual(loaded, options);
    auto expected_futures = expected.SubmitBatch(requests);
    auto actual_futures = actual.SubmitBatch(requests);
    ASSERT_EQ(expected_futures.size(), actual_futures.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const QueryResponse want = expected_futures[i].get();
      const QueryResponse got = actual_futures[i].get();
      EXPECT_TRUE(got.ok()) << label << ": request " << i;
      EXPECT_EQ(got.result, want.result)
          << label << ": request " << i << " @" << threads << "t";
    }
  }
}

// -------------------------------------------------------------------------
// Golden files
// -------------------------------------------------------------------------

struct GoldenCase {
  const char* file;
  /// Builds the compressor and returns its seal.
  SnapshotPtr (*seal)(const TrajectoryDataset&);
  double cell_size;
};

SnapshotPtr SealPpqA(const TrajectoryDataset& data) {
  auto method = MakeMethod("PPQ-A", PpqOptions{});
  method->Compress(data);
  return method->Seal();
}

SnapshotPtr SealTrajStore(const TrajectoryDataset& data) {
  baselines::TrajStore::Options options;
  options.region = {-9.0, 41.0, -8.0, 41.5};
  baselines::TrajStore method(options);
  method.Compress(data);
  return method.Seal();
}

class SnapshotGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(SnapshotGolden, FreshSaveMatchesGoldenByteForByte) {
  const GoldenCase& test_case = GetParam();
  const TrajectoryDataset data = GoldenDataset();
  const SnapshotPtr snapshot = test_case.seal(data);

  const std::string fresh = TempPath(test_case.file);
  ASSERT_TRUE(snapshot->Save(fresh).ok());
  const std::vector<uint8_t> fresh_bytes = ReadFileBytes(fresh);
  std::remove(fresh.c_str());

  if (UpdateGolden()) {
    WriteFileBytes(GoldenPath(test_case.file), fresh_bytes);
    GTEST_SKIP() << "golden updated: " << test_case.file;
  }
  const std::vector<uint8_t> golden_bytes = ReadFileBytes(GoldenPath(test_case.file));
  ASSERT_FALSE(golden_bytes.empty());
  // Byte equality — not just parseability — so accidental format drift
  // (field order, endianness, map iteration order) fails loudly.
  EXPECT_TRUE(fresh_bytes == golden_bytes)
      << test_case.file << ": fresh Save diverges from golden ("
      << fresh_bytes.size() << " vs " << golden_bytes.size()
      << " bytes); if the format change is intentional, regenerate with "
         "PPQ_UPDATE_GOLDEN=1 and bump the format version";
}

TEST_P(SnapshotGolden, GoldenOpensAndServesIdenticallyToSeal) {
  if (UpdateGolden()) GTEST_SKIP();
  const GoldenCase& test_case = GetParam();
  const TrajectoryDataset data = GoldenDataset();
  const SnapshotPtr reference = test_case.seal(data);

  // The golden was written by an earlier process: opening it IS the
  // process-restart path.
  auto loaded = OpenSnapshot(GoldenPath(test_case.file));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), reference->name());
  EXPECT_EQ((*loaded)->NumTrajectories(), reference->NumTrajectories());
  EXPECT_EQ((*loaded)->NumCodewords(), reference->NumCodewords());
  EXPECT_DOUBLE_EQ((*loaded)->LocalSearchRadius(),
                   reference->LocalSearchRadius());
  ExpectServesIdentically(*loaded, reference, data, test_case.cell_size,
                          test_case.file);
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, SnapshotGolden,
    ::testing::Values(GoldenCase{"ppq_a.snapshot", &SealPpqA, 0.001},
                      GoldenCase{"trajstore.snapshot", &SealTrajStore,
                                 0.001}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.index == 0 ? "PpqA" : "TrajStore";
    });

// -------------------------------------------------------------------------
// Save / Open round-trip across the method family
// -------------------------------------------------------------------------

class SnapshotRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotRoundTrip, OpenedSnapshotServesIdentically) {
  const TrajectoryDataset data = test::MakePortoDataset({40, 50, 15, 50, 77});
  PpqOptions base;
  auto method = MakeMethod(GetParam(), base);
  method->Compress(data);
  const SnapshotPtr sealed = method->Seal();

  const std::string path = TempPath("roundtrip.snapshot");
  ASSERT_TRUE(sealed->Save(path).ok());
  auto loaded = OpenSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectServesIdentically(*loaded, sealed, data, base.tpi.pi.cell_size,
                          GetParam());
}

INSTANTIATE_TEST_SUITE_P(MakeMethodFamily, SnapshotRoundTrip,
                         ::testing::Values("PPQ-A", "PPQ-A-basic", "PPQ-S",
                                           "PPQ-S-basic", "E-PQ",
                                           "Q-trajectory"));

TEST(SnapshotRoundTripTest, MaterializedSnapshotRoundTrips) {
  const TrajectoryDataset data = test::MakePortoDataset({40, 50, 15, 50, 5});
  baselines::TrajStore::Options options;
  options.region = {-9.0, 41.0, -8.0, 41.5};
  baselines::TrajStore method(options);
  method.Compress(data);
  const SnapshotPtr sealed = method.Seal();

  const std::string path = TempPath("trajstore_rt.snapshot");
  ASSERT_TRUE(sealed->Save(path).ok());
  auto loaded = OpenSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->SummaryBytes(), sealed->SummaryBytes());
  EXPECT_EQ((*loaded)->NumCodewords(), sealed->NumCodewords());
  ExpectServesIdentically(*loaded, sealed, data, options.tpi.pi.cell_size,
                          "TrajStore");
}

TEST(SnapshotRoundTripTest, FixedPerTickModeRoundTrips) {
  const TrajectoryDataset data = test::MakePortoDataset({40, 50, 15, 50, 21});
  PpqOptions options = MakePpqA();
  options.mode = QuantizationMode::kFixedPerTick;
  options.fixed_bits = 6;
  PpqTrajectory method(options);
  method.Compress(data);
  const SnapshotPtr sealed = method.Seal();

  const std::string path = TempPath("fixed_rt.snapshot");
  ASSERT_TRUE(sealed->Save(path).ok());
  auto loaded = OpenSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectServesIdentically(*loaded, sealed, data, options.tpi.pi.cell_size,
                          "PPQ-A fixed");
}

TEST(SnapshotRoundTripTest, NoIndexSnapshotRoundTrips) {
  const TrajectoryDataset data = test::MakePortoDataset({20, 30, 10, 30, 3});
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(data);
  const SnapshotPtr sealed = method.Seal();
  ASSERT_EQ(sealed->index(), nullptr);

  const std::string path = TempPath("noindex.snapshot");
  ASSERT_TRUE(sealed->Save(path).ok());
  auto loaded = OpenSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->index(), nullptr);
  // Reconstruction still round-trips exactly.
  DecodeMemo memo;
  for (const Trajectory& traj : data.trajectories()) {
    const Tick t = traj.start_tick;
    const auto a = sealed->Reconstruct(traj.id, t, &memo);
    const auto b = (*loaded)->Reconstruct(traj.id, t, &memo);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->x, b->x);
    EXPECT_EQ(a->y, b->y);
  }
}

TEST(SnapshotRoundTripTest, MidStreamSealRoundTrips) {
  // A seal cut before Finish() has an un-finalized TPI (raw id lists);
  // the container must carry that state too.
  const TrajectoryDataset data = test::MakePortoDataset({40, 50, 15, 50, 31});
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  const Tick mid = (data.MinTick() + data.MaxTick()) / 2;
  for (Tick t = data.MinTick(); t < mid; ++t) {
    const TimeSlice slice = data.SliceAt(t);
    if (!slice.empty()) method.ObserveSlice(slice);
  }
  const SnapshotPtr sealed = method.Seal();

  const std::string path = TempPath("midstream.snapshot");
  ASSERT_TRUE(sealed->Save(path).ok());
  auto loaded = OpenSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectServesIdentically(*loaded, sealed, data, options.tpi.pi.cell_size,
                          "mid-stream");
}

// -------------------------------------------------------------------------
// Loader I/O accounting
// -------------------------------------------------------------------------

TEST(SnapshotIoTest, ColdOpenCostObservableThroughPageManager) {
  const TrajectoryDataset data = test::MakePortoDataset({30, 40, 12, 40, 8});
  const SnapshotPtr sealed = SealPpqA(data);
  const std::string path = TempPath("iostats.snapshot");

  storage::PageManager write_pager(/*page_size_bytes=*/4096);
  ASSERT_TRUE(sealed->Save(path, &write_pager).ok());
  EXPECT_GT(write_pager.io_stats().pages_written, 0u);

  storage::PageManager read_pager(/*page_size_bytes=*/4096);
  auto loaded = OpenSnapshot(path, &read_pager);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Cold open fetches every page the container occupies.
  EXPECT_EQ(read_pager.io_stats().pages_read,
            static_cast<uint64_t>(read_pager.NumPages()));
  EXPECT_GT(read_pager.io_stats().pages_read, 0u);
}

// -------------------------------------------------------------------------
// Cross-format errors
// -------------------------------------------------------------------------

TEST(SnapshotFormatTest, MissingFileIsIOError) {
  EXPECT_EQ(OpenSnapshot("/nonexistent/nope.snapshot").status().code(),
            StatusCode::kIOError);
}

TEST(SnapshotFormatTest, SummaryContainerIsNotASnapshot) {
  // A SaveSummary container parses but has no META section.
  const TrajectoryDataset data = test::MakePortoDataset({10, 20, 8, 20, 1});
  PpqOptions options = MakePpqSBasic();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(data);
  const std::string path = TempPath("summary_only.container");
  ASSERT_TRUE(SaveSummary(method.summary(), path).ok());
  const auto result = OpenSnapshot(path);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // And the reverse: LoadSummary on a snapshot container works — it holds
  // a SUMM section — so one file format serves both readers.
  const SnapshotPtr sealed = method.Seal();
  ASSERT_TRUE(sealed->Save(path).ok());
  auto summary = LoadSummary(path);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->NumTrajectories(), method.summary().NumTrajectories());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppq::core
