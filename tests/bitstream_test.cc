#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/random.h"

namespace ppq {
namespace {

TEST(BitStreamTest, EmptyStream) {
  BitWriter w;
  EXPECT_EQ(w.BitCount(), 0u);
  EXPECT_EQ(w.ByteSize(), 0u);
  BitReader r(w);
  EXPECT_EQ(r.Remaining(), 0u);
  EXPECT_FALSE(r.ReadBits(1).ok());
}

TEST(BitStreamTest, SingleBitRoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBit(false);
  w.WriteBit(true);
  BitReader r(w);
  EXPECT_TRUE(*r.ReadBit());
  EXPECT_FALSE(*r.ReadBit());
  EXPECT_TRUE(*r.ReadBit());
  EXPECT_EQ(r.Remaining(), 0u);
}

TEST(BitStreamTest, MsbFirstLayout) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  // First written bit occupies the MSB of byte 0.
  EXPECT_EQ(w.buffer()[0], 0b10100000);
}

TEST(BitStreamTest, CrossByteValues) {
  BitWriter w;
  w.WriteBits(0xABC, 12);
  w.WriteBits(0x5, 3);
  BitReader r(w);
  EXPECT_EQ(*r.ReadBits(12), 0xABCu);
  EXPECT_EQ(*r.ReadBits(3), 0x5u);
}

TEST(BitStreamTest, SixtyFourBitValue) {
  BitWriter w;
  const uint64_t value = 0xDEADBEEFCAFEBABEull;
  w.WriteBits(value, 64);
  BitReader r(w);
  EXPECT_EQ(*r.ReadBits(64), value);
}

TEST(BitStreamTest, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(0x3, 2);
  BitReader r(w);
  EXPECT_TRUE(r.ReadBits(2).ok());
  const auto fail = r.ReadBits(1);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kOutOfRange);
}

TEST(BitStreamTest, ZeroWidthWriteIsNoop) {
  BitWriter w;
  w.WriteBits(0xFF, 0);
  EXPECT_EQ(w.BitCount(), 0u);
}

TEST(BitStreamTest, ClearResets) {
  BitWriter w;
  w.WriteBits(0xFF, 8);
  w.Clear();
  EXPECT_EQ(w.BitCount(), 0u);
  EXPECT_TRUE(w.buffer().empty());
}

/// Property: any sequence of (value, width) writes reads back identically.
class BitStreamRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitStreamRoundTrip, RandomSequences) {
  Rng rng(GetParam());
  std::vector<std::pair<uint64_t, int>> writes;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int width = static_cast<int>(rng.UniformInt(1, 64));
    uint64_t value = static_cast<uint64_t>(rng.UniformInt(0, (1LL << 62)));
    if (width < 64) value &= (1ull << width) - 1;
    writes.push_back({value, width});
    w.WriteBits(value, width);
  }
  BitReader r(w);
  for (const auto& [value, width] : writes) {
    const auto read = r.ReadBits(width);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, value);
  }
  EXPECT_EQ(r.Remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ppq
