#include "repo/live_repository.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "repo/live_query_service.h"
#include "repo/sharded_query_service.h"
#include "tests/test_util.h"

/// \file live_repository_test.cc
/// The ingest-while-serving tentpole's contract. The load-bearing oracle:
/// StrqMode::kExact equals ground truth over the raw data (local-search
/// recall 1, verification precision 1 — window_knn_test proves it for the
/// sealed path, and tail points are raw, where all modes coincide), and
/// appends only ever add ticks NEWER than the frontier — so for any query
/// tick at or behind the frontier, ground truth over the FULL dataset is
/// the exact oracle even mid-ingest, whichever side of a watermark roll
/// or in-flight background seal each point currently sits on. That is the
/// staleness bound made testable: every response equals the oracle over
/// every point appended before it, at every roll/seal boundary.
///
/// Around it: watermark rolls (tick-span and point-count) trip
/// deterministically; appends divert to the pending queue during a slow
/// background seal and drain losslessly; per-shard tick monotonicity is
/// enforced per batch; the sealed snapshot after RollAll+Quiesce answers
/// byte-identically to the live union (tails empty); and concurrent
/// appenders racing queries stay exact (TSan CI job).

namespace ppq::repo {
namespace {

using core::QueryEngine;
using core::QueryResponse;
using core::QuerySpec;
using core::SampleQueries;
using core::StrqMode;
using core::StrqRequest;
using core::WindowRequest;
using core::WindowSpec;

constexpr StrqMode kAllModes[] = {StrqMode::kApproximate,
                                  StrqMode::kLocalSearch, StrqMode::kExact};

TrajectoryDataset SmallDataset(uint64_t seed = 77, int trajectories = 40) {
  return test::MakePortoDataset({trajectories, 50, 15, 50, seed});
}

LiveRepository::CompressorFactory PpqAFactory() {
  return [](uint32_t /*shard*/) {
    return std::make_unique<core::PpqTrajectory>(core::MakePpqA());
  };
}

double CellSize() { return core::PpqOptions{}.tpi.pi.cell_size; }

/// Append the whole dataset tick by tick (the single-producer shape).
void IngestAll(LiveRepository& live, const TrajectoryDataset& data) {
  for (Tick t = data.MinTick(); t < data.MaxTick(); ++t) {
    const PointBatch batch = data.BatchAt(t);
    if (!batch.empty()) {
      ASSERT_TRUE(live.Append(batch).ok());
    }
  }
}

std::vector<TrajId> SortedIds(std::vector<TrajId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// -------------------------------------------------------------------------
// Construction and batch validation
// -------------------------------------------------------------------------

TEST(LiveRepositoryTest, RejectsInvalidConstruction) {
  LiveRepository::Options zero;
  zero.num_shards = 0;
  EXPECT_THROW(LiveRepository(PpqAFactory(), zero), std::invalid_argument);

  LiveRepository::Options options;
  options.num_shards = 2;
  EXPECT_THROW(LiveRepository([](uint32_t) {
                 return std::unique_ptr<core::Compressor>();
               },
                              options),
               std::invalid_argument);
}

TEST(LiveRepositoryTest, AppendValidatesBatchAndTickMonotonicity) {
  LiveRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 1;
  LiveRepository live(PpqAFactory(), options);

  PointBatch mismatched(5);
  mismatched.ids.push_back(7);  // positions left empty
  EXPECT_FALSE(live.Append(mismatched).ok());

  PointBatch t10(10);
  t10.Add(1, Point{-8.6, 41.1});
  EXPECT_TRUE(live.Append(t10).ok());

  PointBatch t12(12);
  t12.Add(1, Point{-8.61, 41.11});
  EXPECT_TRUE(live.Append(t12).ok());

  // Same tick as staging: merges.
  PointBatch t12b(12);
  t12b.Add(2, Point{-8.62, 41.12});
  EXPECT_TRUE(live.Append(t12b).ok());

  // Behind the staging tick: rejected.
  PointBatch t11(11);
  t11.Add(3, Point{-8.63, 41.13});
  const Status regression = live.Append(t11);
  EXPECT_EQ(regression.code(), StatusCode::kInvalidArgument);

  // Advance to 13 (flushes 12), then 12 again: already flushed.
  PointBatch t13(13);
  t13.Add(1, Point{-8.64, 41.14});
  EXPECT_TRUE(live.Append(t13).ok());
  PointBatch t12c(12);
  t12c.Add(4, Point{-8.65, 41.15});
  EXPECT_EQ(live.Append(t12c).code(), StatusCode::kInvalidArgument);

  // The rejected batches left no trace: only the accepted points count.
  EXPECT_EQ(live.TotalPointsAppended(), 4u);
}

// -------------------------------------------------------------------------
// The queryable tail (before any seal exists)
// -------------------------------------------------------------------------

TEST(LiveRepositoryTest, TailServesEveryPointBeforeAnySeal) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  LiveRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 1;
  options.watermark_ticks = 0;   // never roll:
  options.watermark_points = 0;  // the whole stream lives in the tail
  const auto live = std::make_shared<LiveRepository>(PpqAFactory(), options);
  IngestAll(*live, *data);

  EXPECT_EQ(live->MinSealEpoch(), 0u);
  size_t tail_points = 0;
  for (size_t s = 0; s < live->num_shards(); ++s) {
    tail_points += live->ShardView(s)->tail_points;
  }
  EXPECT_EQ(tail_points, live->TotalPointsAppended());

  LiveQueryService::Options serve;
  serve.num_threads = 2;
  serve.raw = data;
  serve.cell_size = CellSize();
  LiveQueryService service(live, serve);

  // Tail points are raw: all three modes coincide AND equal ground truth.
  Rng rng(5);
  for (const QuerySpec& q : SampleQueries(*data, 40, &rng)) {
    const auto truth = QueryEngine::GroundTruth(*data, q, CellSize());
    for (StrqMode mode : kAllModes) {
      const QueryResponse response =
          service.Submit(StrqRequest{q, mode}).get();
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(SortedIds(response.strq().ids), SortedIds(truth))
          << "tick " << q.tick;
      EXPECT_EQ(response.stats.seal_epoch, 0u);
    }
  }
}

// -------------------------------------------------------------------------
// The staleness bound, across roll and background-seal boundaries
// -------------------------------------------------------------------------

TEST(LiveRepositoryTest, StalenessBoundAcrossRollAndSealBoundaries) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  LiveRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 1;
  options.watermark_ticks = 5;  // roll often: many boundaries to cross
  options.watermark_points = 0;
  const auto live = std::make_shared<LiveRepository>(PpqAFactory(), options);

  LiveQueryService::Options serve;
  serve.num_threads = 2;
  serve.raw = data;
  serve.cell_size = CellSize();
  LiveQueryService service(live, serve);

  Rng rng(9);
  const auto queries = SampleQueries(*data, 120, &rng);
  const auto windows = test::SampleWindows(*data, 60, &rng);

  // Ingest tick by tick; after each tick, replay every sampled query at
  // or behind the frontier whose tick is "near" — current, one watermark
  // back (straddling the last roll), two watermarks back (sealed by now).
  // Background seals land whenever they land; exactness must not care.
  const auto near_frontier = [&](Tick query_tick, Tick frontier) {
    if (query_tick > frontier) return false;
    const Tick lag = frontier - query_tick;
    return lag == 0 || lag == options.watermark_ticks ||
           lag == 2 * options.watermark_ticks;
  };

  size_t checked = 0;
  for (Tick t = data->MinTick(); t < data->MaxTick(); ++t) {
    const PointBatch batch = data->BatchAt(t);
    if (!batch.empty()) {
      ASSERT_TRUE(live->Append(batch).ok());
    }

    const uint64_t epoch_floor = live->MinSealEpoch();
    for (const QuerySpec& q : queries) {
      if (!near_frontier(q.tick, t)) continue;
      const QueryResponse response =
          service.Submit(StrqRequest{q, StrqMode::kExact}).get();
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(SortedIds(response.strq().ids),
                SortedIds(QueryEngine::GroundTruth(*data, q, CellSize())))
          << "query tick " << q.tick << " at frontier " << t;
      // Freshness is reported and monotone: a response never claims a
      // seal generation older than the floor read before submission.
      EXPECT_GE(response.stats.seal_epoch, epoch_floor);
      ++checked;
    }
    for (const WindowSpec& w : windows) {
      if (!near_frontier(w.tick, t)) continue;
      const QueryResponse response =
          service.Submit(WindowRequest{w, StrqMode::kExact}).get();
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(SortedIds(response.strq().ids),
                SortedIds(QueryEngine::WindowGroundTruth(*data, w.window,
                                                         w.tick)))
          << "window tick " << w.tick << " at frontier " << t;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);

  // Final cut: everything seals, tails empty, answers unchanged.
  live->RollAll();
  live->Quiesce();
  EXPECT_GE(live->MinSealEpoch(), 1u);
  for (size_t s = 0; s < live->num_shards(); ++s) {
    EXPECT_EQ(live->ShardView(s)->tail_points, 0u) << "shard " << s;
  }
  for (const QuerySpec& q : queries) {
    const QueryResponse response =
        service.Submit(StrqRequest{q, StrqMode::kExact}).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(SortedIds(response.strq().ids),
              SortedIds(QueryEngine::GroundTruth(*data, q, CellSize())));
    EXPECT_GE(response.stats.seal_epoch, 1u);
  }
}

// -------------------------------------------------------------------------
// Watermark rolls trip deterministically
// -------------------------------------------------------------------------

TEST(LiveRepositoryTest, TickWatermarkRollsDeterministically) {
  const TrajectoryDataset data = SmallDataset();
  LiveRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 1;
  options.watermark_ticks = 4;
  options.watermark_points = 0;
  LiveRepository live(PpqAFactory(), options);

  // Quiescing after every tick keeps each seal out of the next flush's
  // way, so the roll points are exactly the watermark arithmetic's.
  std::vector<Tick> nonempty;
  for (Tick t = data.MinTick(); t < data.MaxTick(); ++t) {
    const PointBatch batch = data.BatchAt(t);
    if (batch.empty()) continue;
    ASSERT_TRUE(live.Append(batch).ok());
    live.Quiesce();
    nonempty.push_back(t);
  }
  live.RollAll();
  live.Quiesce();

  // Replay the trip rule: tick u flushes when the stream advances past
  // it; a segment seals once it spans watermark_ticks; RollAll cuts the
  // rest.
  uint64_t expected = 0;
  Tick first = kNoTickYet;
  for (size_t i = 0; i + 1 < nonempty.size(); ++i) {
    if (first == kNoTickYet) first = nonempty[i];
    if (nonempty[i] - first + 1 >= options.watermark_ticks) {
      ++expected;
      first = kNoTickYet;
    }
  }
  if (!nonempty.empty()) ++expected;  // RollAll seals the final segment

  EXPECT_EQ(live.MinSealEpoch(), expected);
  EXPECT_GE(expected, 5u);  // the dataset really exercises multiple rolls
  EXPECT_EQ(live.ShardView(0)->sealed_through, nonempty.back());
  EXPECT_EQ(live.ShardView(0)->tail_points, 0u);
}

TEST(LiveRepositoryTest, PointWatermarkRollsDeterministically) {
  const TrajectoryDataset data = SmallDataset();
  LiveRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 1;
  options.watermark_ticks = 0;
  options.watermark_points = 150;
  LiveRepository live(PpqAFactory(), options);

  std::vector<size_t> flushed_sizes;
  for (Tick t = data.MinTick(); t < data.MaxTick(); ++t) {
    const PointBatch batch = data.BatchAt(t);
    if (batch.empty()) continue;
    ASSERT_TRUE(live.Append(batch).ok());
    live.Quiesce();
    flushed_sizes.push_back(batch.size());
  }
  live.RollAll();
  live.Quiesce();

  uint64_t expected = 0;
  size_t segment = 0;
  for (size_t i = 0; i + 1 < flushed_sizes.size(); ++i) {
    segment += flushed_sizes[i];
    if (segment >= options.watermark_points) {
      ++expected;
      segment = 0;
    }
  }
  if (!flushed_sizes.empty()) ++expected;  // RollAll

  EXPECT_EQ(live.MinSealEpoch(), expected);
  EXPECT_GE(expected, 2u);
}

// -------------------------------------------------------------------------
// Appends divert (and drain losslessly) while a seal is in flight
// -------------------------------------------------------------------------

/// Decorator making Compressor::Seal slow enough that appends provably
/// land WHILE the background seal runs — the pending-queue path.
class SlowSealCompressor : public core::Compressor {
 public:
  explicit SlowSealCompressor(std::unique_ptr<core::Compressor> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void ObserveSlice(const TimeSlice& slice) override {
    inner_->ObserveSlice(slice);
  }
  void Finish() override { inner_->Finish(); }
  Result<Point> Reconstruct(TrajId id, Tick t) const override {
    return inner_->Reconstruct(id, t);
  }
  size_t SummaryBytes() const override { return inner_->SummaryBytes(); }
  size_t NumCodewords() const override { return inner_->NumCodewords(); }
  const index::TemporalPartitionIndex* index() const override {
    return inner_->index();
  }
  double LocalSearchRadius() const override {
    return inner_->LocalSearchRadius();
  }
  std::vector<core::RecordSpan> RecordSpans() const override {
    return inner_->RecordSpans();
  }
  core::SnapshotPtr Seal() const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return inner_->Seal();
  }

 private:
  std::unique_ptr<core::Compressor> inner_;
};

TEST(LiveRepositoryTest, PendingAppendsDrainDuringSlowSeal) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  LiveRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 1;
  options.watermark_ticks = 4;
  options.watermark_points = 0;
  const auto live = std::make_shared<LiveRepository>(
      [](uint32_t) {
        return std::make_unique<SlowSealCompressor>(
            std::make_unique<core::PpqTrajectory>(core::MakePpqA()));
      },
      options);

  // Ingest everything back to back: the first roll's 100ms seal is still
  // in flight while the following ticks flush, so they MUST divert to the
  // pending queue and drain when the cut lands.
  IngestAll(*live, *data);
  live->RollAll();
  live->Quiesce();

  EXPECT_GE(live->MinSealEpoch(), 2u);
  EXPECT_EQ(live->ShardView(0)->tail_points, 0u);

  // Lossless: after the last cut, every point answers from the summary,
  // exactly.
  LiveQueryService::Options serve;
  serve.num_threads = 2;
  serve.raw = data;
  serve.cell_size = CellSize();
  LiveQueryService service(live, serve);
  Rng rng(13);
  for (const QuerySpec& q : SampleQueries(*data, 40, &rng)) {
    const QueryResponse response =
        service.Submit(StrqRequest{q, StrqMode::kExact}).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(SortedIds(response.strq().ids),
              SortedIds(QueryEngine::GroundTruth(*data, q, CellSize())))
        << "tick " << q.tick;
  }
}

// -------------------------------------------------------------------------
// The quiesced live union == the phased sharded path over SealedSnapshot
// -------------------------------------------------------------------------

TEST(LiveRepositoryTest, SealedSnapshotMatchesLiveServiceAfterQuiesce) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  LiveRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 1;
  options.watermark_ticks = 8;
  options.watermark_points = 0;
  const auto live = std::make_shared<LiveRepository>(PpqAFactory(), options);
  IngestAll(*live, *data);
  live->RollAll();
  live->Quiesce();

  LiveQueryService::Options live_serve;
  live_serve.num_threads = 2;
  live_serve.raw = data;
  live_serve.cell_size = CellSize();
  LiveQueryService live_service(live, live_serve);

  ShardedQueryService::Options sharded_serve;
  sharded_serve.num_threads = 2;
  sharded_serve.raw = data;
  sharded_serve.cell_size = CellSize();
  ShardedQueryService sharded_service(live->SealedSnapshot(), sharded_serve);

  Rng rng(21);
  const auto queries = SampleQueries(*data, 25, &rng);
  const auto windows = test::SampleWindows(*data, 12, &rng);
  std::vector<core::QueryRequest> requests;
  for (StrqMode mode : kAllModes) {
    for (const QuerySpec& q : queries) {
      requests.push_back(StrqRequest{q, mode});
      requests.push_back(core::TpqRequest{q, 8, mode});
    }
    for (const WindowSpec& w : windows) {
      requests.push_back(WindowRequest{w, mode});
    }
  }
  for (const QuerySpec& q : queries) {
    requests.push_back(core::KnnRequest{q, 5});
  }

  auto live_futures = live_service.SubmitBatch(requests);
  auto sharded_futures = sharded_service.SubmitBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryResponse a = live_futures[i].get();
    const QueryResponse b = sharded_futures[i].get();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.result, b.result) << "request " << i;
  }
}

// -------------------------------------------------------------------------
// Concurrency: appenders racing queries (TSan)
// -------------------------------------------------------------------------

/// Reusable cyclic barrier (C++17 has none): appender threads synchronize
/// per tick so per-shard batch ticks stay non-decreasing.
class TickBarrier {
 public:
  explicit TickBarrier(int parties) : parties_(parties) {}

  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != generation; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_ = 0;
  uint64_t generation_ = 0;
};

TEST(LiveRepositoryConcurrencyTest, AppendersRaceQueriesAndStayExact) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(31, 24));
  LiveRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 1;
  options.watermark_ticks = 4;
  options.watermark_points = 0;
  const auto live = std::make_shared<LiveRepository>(PpqAFactory(), options);

  LiveQueryService::Options serve;
  serve.num_threads = 2;
  serve.raw = data;
  serve.cell_size = CellSize();
  LiveQueryService service(live, serve);

  Rng rng(3);
  const auto queries = SampleQueries(*data, 40, &rng);
  std::vector<std::vector<TrajId>> truth;
  truth.reserve(queries.size());
  for (const QuerySpec& q : queries) {
    truth.push_back(SortedIds(QueryEngine::GroundTruth(*data, q, CellSize())));
  }

  constexpr int kAppenders = 2;
  TickBarrier barrier(kAppenders);
  std::atomic<Tick> frontier{std::numeric_limits<Tick>::min()};
  std::atomic<bool> done{false};

  // Each appender owns every (kAppenders)th point of each tick's batch;
  // the barrier keeps both on the same tick so per-shard ticks never
  // regress. Same-tick batches from both threads merge in staging.
  std::vector<std::thread> appenders;
  for (int a = 0; a < kAppenders; ++a) {
    appenders.emplace_back([&, a] {
      for (Tick t = data->MinTick(); t < data->MaxTick(); ++t) {
        const PointBatch full = data->BatchAt(t);
        PointBatch mine(t);
        for (size_t i = static_cast<size_t>(a); i < full.size();
             i += kAppenders) {
          mine.Add(full.ids[i], full.positions[i]);
        }
        EXPECT_TRUE(live->Append(mine).ok());
        barrier.Arrive();
        // Both threads finished tick t: publish the frontier (one writer).
        if (a == 0) frontier.store(t, std::memory_order_release);
        barrier.Arrive();
      }
    });
  }

  std::thread reader([&] {
    size_t exact_checked = 0;
    while (!done.load(std::memory_order_acquire) || exact_checked == 0) {
      const Tick f = frontier.load(std::memory_order_acquire);
      for (size_t i = 0; i < queries.size(); ++i) {
        if (queries[i].tick > f) continue;
        const QueryResponse response =
            service.Submit(StrqRequest{queries[i], StrqMode::kExact}).get();
        ASSERT_TRUE(response.ok());
        EXPECT_EQ(SortedIds(response.strq().ids), truth[i])
            << "query " << i << " at frontier " << f;
        ++exact_checked;
      }
    }
    EXPECT_GT(exact_checked, 0u);
  });

  for (std::thread& t : appenders) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Everything appended exactly once across the racing producers.
  size_t total = 0;
  for (Tick t = data->MinTick(); t < data->MaxTick(); ++t) {
    total += data->SliceAt(t).size();
  }
  EXPECT_EQ(live->TotalPointsAppended(), total);

  live->RollAll();
  live->Quiesce();
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResponse response =
        service.Submit(StrqRequest{queries[i], StrqMode::kExact}).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(SortedIds(response.strq().ids), truth[i]) << "query " << i;
  }
}

// The seal-diversion protocol under racing readers. This is the path the
// thread-safety annotations restructured: SealShard MOVES the shard's
// compressor out under `shard.mu`, seals it with no lock held while
// appends divert to the pending queue, then moves it back and publishes
// the view. A slow seal keeps that window open for ~every flush while an
// appender hammers Append and a poller hammers ShardView/MinSealEpoch —
// under TSan (this suite is in the tsan CI job's -R 'Live' selection),
// any access that escaped the lock discipline is a hard failure. The
// final exactness sweep proves the diverted appends also drained
// losslessly.
TEST(LiveRepositoryConcurrencyTest, SealDiversionRacesViewReaders) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  LiveRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 2;
  options.watermark_ticks = 3;
  options.watermark_points = 0;
  const auto live = std::make_shared<LiveRepository>(
      [](uint32_t) {
        return std::make_unique<SlowSealCompressor>(
            std::make_unique<core::PpqTrajectory>(core::MakePpqA()));
      },
      options);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    uint64_t floor = 0;
    std::vector<uint64_t> shard_floor(options.num_shards, 0);
    while (!done.load(std::memory_order_acquire)) {
      // Published views and the seal epoch must always read as a
      // consistent, monotone snapshot while seals are in flight.
      const uint64_t epoch = live->MinSealEpoch();
      EXPECT_GE(epoch, floor);
      floor = epoch;
      for (uint32_t s = 0; s < options.num_shards; ++s) {
        const auto view = live->ShardView(s);
        ASSERT_NE(view, nullptr);
        EXPECT_GE(view->seal_epoch, shard_floor[s]);
        shard_floor[s] = view->seal_epoch;
      }
      std::this_thread::yield();
    }
  });

  // Back-to-back ingest: each 100ms seal is still running when the next
  // watermark's flush lands, so those flushes take the diversion path.
  IngestAll(*live, *data);
  live->RollAll();
  live->Quiesce();
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GE(live->MinSealEpoch(), 1u);
  LiveQueryService::Options serve;
  serve.num_threads = 2;
  serve.raw = data;
  serve.cell_size = CellSize();
  LiveQueryService service(live, serve);
  Rng rng(29);
  for (const QuerySpec& q : SampleQueries(*data, 25, &rng)) {
    const QueryResponse response =
        service.Submit(StrqRequest{q, StrqMode::kExact}).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(SortedIds(response.strq().ids),
              SortedIds(QueryEngine::GroundTruth(*data, q, CellSize())))
        << "tick " << q.tick;
  }
}

}  // namespace
}  // namespace ppq::repo
