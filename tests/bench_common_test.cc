#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_common.h"
#include "common/geo.h"

namespace ppq::bench {
namespace {

TEST(ParseArgsTest, Defaults) {
  const char* argv[] = {"bench"};
  const BenchOptions options = ParseArgs(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 1.0);
  EXPECT_EQ(options.queries, 1000u);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.threads, 1u);
}

TEST(ParseArgsTest, ParsesAllFlags) {
  const char* argv[] = {"bench", "--scale=0.25", "--queries=500",
                        "--seed=7", "--threads=4"};
  const BenchOptions options = ParseArgs(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 0.25);
  EXPECT_EQ(options.queries, 500u);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.threads, 4u);
}

TEST(ParseArgsTest, IgnoresUnknownFlags) {
  const char* argv[] = {"bench", "--bogus=1", "--scale=2"};
  const BenchOptions options = ParseArgs(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 2.0);
}

TEST(BundleTest, ScaleControlsTrajectoryCount) {
  BenchOptions small;
  small.scale = 0.1;
  BenchOptions large;
  large.scale = 0.5;
  EXPECT_LT(MakePortoBundle(small).data.size(),
            MakePortoBundle(large).data.size());
  EXPECT_LT(MakeGeoLifeBundle(small).data.size(),
            MakeGeoLifeBundle(large).data.size());
}

TEST(BundleTest, GeoLifeSpansMoreThanPorto) {
  BenchOptions options;
  options.scale = 0.05;
  const auto porto = MakePortoBundle(options).data.Bounds();
  const auto geolife = MakeGeoLifeBundle(options).data.Bounds();
  EXPECT_GT(geolife.width(), porto.width());
}

TEST(DeviationSetupTest, NonCqcUsesEpsilonDirectly) {
  const MethodSetup setup = DeviationSetup(400.0, /*cqc_method=*/false);
  EXPECT_EQ(setup.mode, core::QuantizationMode::kErrorBounded);
  EXPECT_NEAR(DegreesToMeters(setup.epsilon1), 400.0, 1e-6);
}

TEST(DeviationSetupTest, CqcMethodFollowsPaperScaling) {
  // sqrt(2)/2 * gs = D and eps_1 = 2 gs (Section 6.3.1).
  const MethodSetup setup = DeviationSetup(400.0, /*cqc_method=*/true);
  const double gs_m = DegreesToMeters(setup.cqc_grid_size);
  EXPECT_NEAR(std::sqrt(2.0) / 2.0 * gs_m, 400.0, 1e-6);
  EXPECT_NEAR(setup.epsilon1, 2.0 * setup.cqc_grid_size, 1e-12);
}

TEST(MethodFactoryTest, CoversAllNineMethods) {
  BenchOptions options;
  options.scale = 0.02;
  const DatasetBundle bundle = MakePortoBundle(options);
  EXPECT_EQ(AllMethodNames().size(), 9u);
  for (const std::string& name : AllMethodNames()) {
    MethodSetup setup;
    auto method = MakeCompressor(name, bundle, setup);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
  }
}

TEST(MethodFactoryTest, FilteringListExcludesTrajStore) {
  for (const std::string& name : FilteringMethodNames()) {
    EXPECT_NE(name, "TrajStore");
  }
  EXPECT_EQ(FilteringMethodNames().size(), 8u);
}

TEST(MethodFactoryTest, PartitionThresholdsFollowBundle) {
  BenchOptions options;
  options.scale = 0.02;
  DatasetBundle bundle = MakePortoBundle(options);
  bundle.eps_p_spatial = 0.123;
  bundle.eps_p_autocorr = 0.456;
  MethodSetup setup;
  auto spatial = MakeCompressor("PPQ-S", bundle, setup);
  auto autocorr = MakeCompressor("PPQ-A", bundle, setup);
  EXPECT_DOUBLE_EQ(
      static_cast<core::PpqTrajectory*>(spatial.get())->options().epsilon_p,
      0.123);
  EXPECT_DOUBLE_EQ(
      static_cast<core::PpqTrajectory*>(autocorr.get())->options().epsilon_p,
      0.456);
}

TEST(MethodFactoryTest, EndToEndSmokeAllMethods) {
  // Every factory-produced method must survive a tiny compress + query
  // cycle (this is the loop every table bench runs).
  BenchOptions options;
  options.scale = 0.02;
  const DatasetBundle bundle = MakePortoBundle(options);
  for (const std::string& name : AllMethodNames()) {
    MethodSetup setup;
    setup.mode = core::QuantizationMode::kFixedPerTick;
    setup.fixed_bits = 4;
    auto method = MakeCompressor(name, bundle, setup);
    method->Compress(bundle.data);
    EXPECT_GT(method->SummaryBytes(), 0u) << name;
    const Trajectory& traj = bundle.data[0];
    EXPECT_TRUE(method->Reconstruct(traj.id, traj.start_tick).ok()) << name;
  }
}

}  // namespace
}  // namespace ppq::bench
