#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/ppq_trajectory.h"
#include "datagen/generator.h"

namespace ppq::core {
namespace {

TrajectoryDataset SmallDataset(int trajectories = 40, Tick horizon = 60) {
  datagen::GeneratorOptions options;
  options.num_trajectories = trajectories;
  options.horizon = horizon;
  options.min_length = 20;
  options.max_length = static_cast<int>(horizon);
  options.seed = 1234;
  return datagen::PortoLikeGenerator(options).Generate();
}

PpqOptions FastOptions(PpqOptions base) {
  base.enable_index = true;
  return base;
}

TEST(PpqTrajectoryTest, MethodNames) {
  EXPECT_EQ(PpqTrajectory(MakePpqA()).name(), "PPQ-A");
  EXPECT_EQ(PpqTrajectory(MakePpqABasic()).name(), "PPQ-A-basic");
  EXPECT_EQ(PpqTrajectory(MakePpqS()).name(), "PPQ-S");
  EXPECT_EQ(PpqTrajectory(MakePpqSBasic()).name(), "PPQ-S-basic");
  EXPECT_EQ(PpqTrajectory(MakeEPq()).name(), "E-PQ");
  EXPECT_EQ(PpqTrajectory(MakeQTrajectory()).name(), "Q-trajectory");
}

TEST(PpqTrajectoryTest, MakeMethodConfigures) {
  const PpqOptions base;
  EXPECT_EQ(MakeMethod("PPQ-A", base)->name(), "PPQ-A");
  EXPECT_EQ(MakeMethod("E-PQ", base)->name(), "E-PQ");
  EXPECT_EQ(MakeMethod("Q-trajectory", base)->name(), "Q-trajectory");
}

/// Property (Definition 3.2 / Eq. 3): in error-bounded mode, every
/// reconstructed point is within eps_1 of the original — for every method
/// variant in the family.
class ErrorBoundPerMethod : public ::testing::TestWithParam<const char*> {};

TEST_P(ErrorBoundPerMethod, ReconstructionWithinEpsilon) {
  const TrajectoryDataset dataset = SmallDataset();
  PpqOptions base;
  base.epsilon1 = 0.001;
  auto method = MakeMethod(GetParam(), base);
  method->Compress(dataset);
  for (const Trajectory& traj : dataset.trajectories()) {
    for (size_t i = 0; i < traj.points.size(); ++i) {
      const Tick t = traj.start_tick + static_cast<Tick>(i);
      // The plain (unrefined) reconstruction obeys the quantizer bound.
      const auto recon = method->summary().Reconstruct(traj.id, t);
      ASSERT_TRUE(recon.ok());
      EXPECT_LE(recon->DistanceTo(traj.points[i]), base.epsilon1 + 1e-9)
          << GetParam() << " traj " << traj.id << " tick " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, ErrorBoundPerMethod,
                         ::testing::Values("PPQ-A", "PPQ-A-basic", "PPQ-S",
                                           "PPQ-S-basic", "E-PQ",
                                           "Q-trajectory"));

TEST(PpqTrajectoryTest, CqcRefinementTightensTheBound) {
  const TrajectoryDataset dataset = SmallDataset();
  PpqOptions options = FastOptions(MakePpqS());
  PpqTrajectory method(options);
  method.Compress(dataset);
  const double bound = method.LocalSearchRadius();
  EXPECT_LT(bound, options.epsilon1);  // sqrt(2)/2 * gs < eps_1
  for (const Trajectory& traj : dataset.trajectories()) {
    for (size_t i = 0; i < traj.points.size(); ++i) {
      const Tick t = traj.start_tick + static_cast<Tick>(i);
      const auto refined = method.Reconstruct(traj.id, t);
      ASSERT_TRUE(refined.ok());
      EXPECT_LE(refined->DistanceTo(traj.points[i]), bound + 1e-9);
    }
  }
}

TEST(PpqTrajectoryTest, BasicVariantBoundIsEpsilon) {
  PpqTrajectory basic(MakePpqSBasic());
  EXPECT_DOUBLE_EQ(basic.LocalSearchRadius(), MakePpqSBasic().epsilon1);
}

TEST(PpqTrajectoryTest, PredictionShrinksCodebook) {
  // With prediction the quantized errors concentrate near zero, so the
  // codebook is much smaller than quantizing raw positions.
  const TrajectoryDataset dataset = SmallDataset(60, 80);
  auto predictive = MakeMethod("E-PQ", PpqOptions{});
  auto raw = MakeMethod("Q-trajectory", PpqOptions{});
  predictive->Compress(dataset);
  raw->Compress(dataset);
  EXPECT_LT(predictive->NumCodewords(), raw->NumCodewords());
}

TEST(PpqTrajectoryTest, PartitioningTracksEpsilonP) {
  const TrajectoryDataset dataset = SmallDataset(60, 80);
  PpqOptions fine = MakePpqS();
  fine.epsilon_p = 0.005;
  PpqOptions coarse = MakePpqS();
  coarse.epsilon_p = 0.5;
  PpqTrajectory fine_method(fine);
  PpqTrajectory coarse_method(coarse);
  fine_method.Compress(dataset);
  coarse_method.Compress(dataset);
  double fine_q = 0.0;
  double coarse_q = 0.0;
  for (const auto& s : fine_method.tick_stats()) fine_q += s.partitions;
  for (const auto& s : coarse_method.tick_stats()) coarse_q += s.partitions;
  EXPECT_GT(fine_q, coarse_q);
}

TEST(PpqTrajectoryTest, TickStatsAlignedWithSlices) {
  const TrajectoryDataset dataset = SmallDataset(20, 40);
  PpqTrajectory method(MakePpqS());
  method.Compress(dataset);
  size_t active_ticks = 0;
  for (Tick t = dataset.MinTick(); t < dataset.MaxTick(); ++t) {
    if (!dataset.SliceAt(t).empty()) ++active_ticks;
  }
  EXPECT_EQ(method.tick_stats().size(), active_ticks);
}

TEST(PpqTrajectoryTest, IndexCoversWholeHorizon) {
  const TrajectoryDataset dataset = SmallDataset(30, 50);
  PpqTrajectory method(FastOptions(MakePpqS()));
  method.Compress(dataset);
  const auto* tpi = method.index();
  ASSERT_NE(tpi, nullptr);
  for (Tick t = dataset.MinTick(); t < dataset.MaxTick(); ++t) {
    if (!dataset.SliceAt(t).empty()) {
      EXPECT_NE(tpi->FindPeriod(t), nullptr) << "tick " << t;
    }
  }
}

TEST(PpqTrajectoryTest, DisabledIndexReturnsNull) {
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  EXPECT_EQ(method.index(), nullptr);
}

TEST(PpqTrajectoryTest, FixedPerTickModeRespectsBitBudget) {
  const TrajectoryDataset dataset = SmallDataset(40, 50);
  PpqOptions options = MakePpqS();
  options.mode = QuantizationMode::kFixedPerTick;
  options.fixed_bits = 5;
  PpqTrajectory method(options);
  method.Compress(dataset);
  for (const auto& [tick, codebook] : method.summary().tick_codebooks()) {
    EXPECT_LE(codebook.size(), 32u) << "tick " << tick;
    EXPECT_GT(codebook.size(), 0u);
  }
  // Reconstruction still works end to end.
  const auto recon = method.Reconstruct(0, dataset[0].start_tick);
  EXPECT_TRUE(recon.ok());
}

TEST(PpqTrajectoryTest, FixedModeMoreBitsLowerError) {
  const TrajectoryDataset dataset = SmallDataset(40, 50);
  const auto mae_for_bits = [&](int bits) {
    PpqOptions options = MakePpqSBasic();  // no CQC: codebook error visible
    options.mode = QuantizationMode::kFixedPerTick;
    options.fixed_bits = bits;
    PpqTrajectory method(options);
    method.Compress(dataset);
    return SummaryMaeMeters(method, dataset);
  };
  EXPECT_GT(mae_for_bits(3), mae_for_bits(8));
}

TEST(PpqTrajectoryTest, CompressionRatioAboveOneOnDefaults) {
  const TrajectoryDataset dataset = SmallDataset(60, 80);
  PpqTrajectory method(MakePpqS());
  method.Compress(dataset);
  EXPECT_GT(CompressionRatio(method, dataset), 1.0);
}

TEST(PpqTrajectoryTest, SummarySizeBreakdownConsistent) {
  const TrajectoryDataset dataset = SmallDataset(20, 40);
  PpqTrajectory method(MakePpqA());
  method.Compress(dataset);
  const SummarySize size = method.summary().Size();
  EXPECT_EQ(method.SummaryBytes(), size.Total());
  EXPECT_GT(size.codebook_bytes, 0u);
  EXPECT_GT(size.code_index_bytes, 0u);
  EXPECT_GT(size.cqc_bytes, 0u);  // PPQ-A stores CQC codes
}

TEST(PpqTrajectoryTest, QTrajectoryStoresNoCoefficients) {
  const TrajectoryDataset dataset = SmallDataset(20, 40);
  PpqTrajectory method(MakeQTrajectory());
  method.Compress(dataset);
  const SummarySize size = method.summary().Size();
  EXPECT_EQ(size.coefficient_bytes, 0u);
  EXPECT_EQ(size.cqc_bytes, 0u);
}

}  // namespace
}  // namespace ppq::core
