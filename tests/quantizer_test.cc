#include <gtest/gtest.h>

#include "common/random.h"
#include "quantizer/codebook.h"
#include "quantizer/incremental_quantizer.h"

namespace ppq::quantizer {
namespace {

TEST(CodebookTest, EmptyNearest) {
  Codebook cb;
  const auto [index, dist] = cb.Nearest({0.0, 0.0});
  EXPECT_EQ(index, -1);
  EXPECT_TRUE(std::isinf(dist));
}

TEST(CodebookTest, NearestPicksClosest) {
  Codebook cb({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  const auto [index, dist] = cb.Nearest({1.9, 0.1});
  EXPECT_EQ(index, 2);
  EXPECT_NEAR(dist, std::sqrt(0.01 + 0.01), 1e-12);
}

TEST(CodebookTest, AddReturnsStableIndices) {
  Codebook cb;
  EXPECT_EQ(cb.Add({1.0, 2.0}), 0);
  EXPECT_EQ(cb.Add({3.0, 4.0}), 1);
  EXPECT_EQ(cb[1].x, 3.0);
}

TEST(CodebookTest, BitsPerIndex) {
  Codebook cb;
  cb.Add({0, 0});
  EXPECT_EQ(cb.BitsPerIndex(), 1);  // V = 1
  cb.Add({1, 1});
  EXPECT_EQ(cb.BitsPerIndex(), 1);  // V = 2
  cb.Add({2, 2});
  EXPECT_EQ(cb.BitsPerIndex(), 2);  // V = 3
  for (int i = 0; i < 6; ++i) cb.Add({0, 0});
  EXPECT_EQ(cb.BitsPerIndex(), 4);  // V = 9
}

TEST(CodebookTest, SizeBytesChargesTwoDoubles) {
  Codebook cb({{0, 0}, {1, 1}});
  EXPECT_EQ(cb.SizeBytes(), 2u * 16u);
}

// ---------------------------------------------------------------------------
// IncrementalQuantizer (Eq. 3)
// ---------------------------------------------------------------------------

IncrementalQuantizer::Options MakeOptions(double epsilon,
                                          GrowthPolicy growth) {
  IncrementalQuantizer::Options o;
  o.epsilon = epsilon;
  o.growth = growth;
  return o;
}

/// Property: after QuantizeBatch, every error is within epsilon of its
/// assigned codeword — the Definition 3.2 bound — for both growth
/// policies and across epsilon scales.
class QuantizerBound
    : public ::testing::TestWithParam<std::tuple<double, GrowthPolicy>> {};

TEST_P(QuantizerBound, ErrorBoundHolds) {
  const auto [epsilon, growth] = GetParam();
  IncrementalQuantizer q(MakeOptions(epsilon, growth));
  Codebook cb;
  Rng rng(77);
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<Point> errors;
    for (int i = 0; i < 200; ++i) {
      errors.push_back({rng.Normal(0.0, epsilon * 4), rng.Normal(0.0, epsilon * 4)});
    }
    const auto codes = q.QuantizeBatch(errors, &cb);
    ASSERT_EQ(codes.size(), errors.size());
    for (size_t i = 0; i < errors.size(); ++i) {
      ASSERT_GE(codes[i], 0);
      ASSERT_LT(static_cast<size_t>(codes[i]), cb.size());
      EXPECT_LE(errors[i].DistanceTo(cb[codes[i]]), epsilon + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonAndPolicy, QuantizerBound,
    ::testing::Combine(::testing::Values(1e-4, 1e-3, 1e-2, 0.1),
                       ::testing::Values(GrowthPolicy::kCluster,
                                         GrowthPolicy::kVerbatim)));

TEST(IncrementalQuantizerTest, NoGrowthWhenCovered) {
  IncrementalQuantizer q(MakeOptions(0.5, GrowthPolicy::kCluster));
  Codebook cb({{0.0, 0.0}});
  QuantizeStats stats;
  const auto codes = q.QuantizeBatch({{0.1, 0.1}, {-0.2, 0.0}}, &cb, &stats);
  EXPECT_EQ(stats.violators, 0u);
  EXPECT_EQ(stats.added_codewords, 0u);
  EXPECT_EQ(cb.size(), 1u);
  EXPECT_EQ(codes[0], 0);
}

TEST(IncrementalQuantizerTest, GrowthOnlyForViolators) {
  IncrementalQuantizer q(MakeOptions(0.5, GrowthPolicy::kVerbatim));
  Codebook cb({{0.0, 0.0}});
  QuantizeStats stats;
  const auto codes =
      q.QuantizeBatch({{0.1, 0.1}, {10.0, 10.0}}, &cb, &stats);
  EXPECT_EQ(stats.violators, 1u);
  EXPECT_EQ(stats.added_codewords, 1u);
  EXPECT_EQ(cb.size(), 2u);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 1);
}

TEST(IncrementalQuantizerTest, ClusterPolicyProducesFewerCodewords) {
  // 100 violators in a tight blob: clustering should cover them with far
  // fewer codewords than verbatim's 100.
  Rng rng(5);
  std::vector<Point> blob;
  for (int i = 0; i < 100; ++i) {
    blob.push_back({5.0 + rng.Normal(0.0, 0.01), 5.0 + rng.Normal(0.0, 0.01)});
  }
  IncrementalQuantizer clustered(MakeOptions(0.1, GrowthPolicy::kCluster));
  IncrementalQuantizer verbatim(MakeOptions(0.1, GrowthPolicy::kVerbatim));
  Codebook cb_c;
  Codebook cb_v;
  clustered.QuantizeBatch(blob, &cb_c);
  verbatim.QuantizeBatch(blob, &cb_v);
  EXPECT_LT(cb_c.size(), cb_v.size());
  EXPECT_LE(cb_c.size(), 4u);
}

TEST(IncrementalQuantizerTest, CodebookGrowsMonotonically) {
  IncrementalQuantizer q(MakeOptions(0.05, GrowthPolicy::kCluster));
  Codebook cb;
  Rng rng(9);
  size_t previous = 0;
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<Point> errors;
    for (int i = 0; i < 50; ++i) {
      errors.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
    }
    q.QuantizeBatch(errors, &cb);
    EXPECT_GE(cb.size(), previous);
    previous = cb.size();
  }
  // Once the space is covered, growth should flatten out: a fresh batch
  // from the same distribution adds few codewords.
  QuantizeStats stats;
  std::vector<Point> more;
  for (int i = 0; i < 50; ++i) {
    more.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
  }
  q.QuantizeBatch(more, &cb, &stats);
  EXPECT_LT(stats.added_codewords, 10u);
}

TEST(IncrementalQuantizerTest, EmptyBatch) {
  IncrementalQuantizer q(MakeOptions(0.1, GrowthPolicy::kCluster));
  Codebook cb;
  const auto codes = q.QuantizeBatch({}, &cb);
  EXPECT_TRUE(codes.empty());
  EXPECT_TRUE(cb.empty());
}

}  // namespace
}  // namespace ppq::quantizer
