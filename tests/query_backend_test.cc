#include "core/query_backend.h"

#include <gtest/gtest.h>

#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "repo/live_query_service.h"
#include "repo/live_repository.h"
#include "repo/sharded_query_service.h"
#include "repo/sharded_repository.h"
#include "tests/test_util.h"

/// \file query_backend_test.cc
/// The backend-conformance suite: every core::QueryBackend implementation
/// — QueryService over one seal, ShardedQueryService over a sealed
/// repository, LiveQueryService over a live repository — must honour the
/// same contract, checked here once and parameterized over all three
/// (replacing the per-service copies these tests grew from):
///
///   - byte-parity with the serial QueryEngine at 1 and 4 workers, cold
///     and warm scratch (each backend is built 1-shard so the serial
///     engine over its one seal IS the oracle);
///   - UpdateView atomically swaps to a new view, rejects another
///     backend's view type with std::invalid_argument (leaving the served
///     view unchanged), and stamps QueryStats::seal_epoch;
///   - destruction drains every submitted future, correctly;
///   - CancelPending fails exactly the queued requests and serving
///     continues;
///   - submitters racing UpdateView (the TSan CI job runs this suite)
///     observe every response as exactly ONE view's byte-exact answer,
///     never a mix of two.

namespace ppq {
namespace {

using core::KindOf;
using core::KnnRequest;
using core::Neighbor;
using core::QueryBackend;
using core::QueryEngine;
using core::QueryRequest;
using core::QueryResponse;
using core::QuerySpec;
using core::ServingView;
using core::SnapshotPtr;
using core::StrqMode;
using core::StrqRequest;
using core::StrqResult;
using core::TpqRequest;
using core::TpqResult;
using core::WindowRequest;
using core::WindowSpec;
using repo::LiveQueryService;
using repo::LiveRepository;
using repo::RepositorySnapshotPtr;
using repo::ShardedQueryService;
using repo::ShardedRepository;

using Payload = std::variant<StrqResult, std::vector<Neighbor>, TpqResult>;

constexpr StrqMode kAllModes[] = {StrqMode::kApproximate,
                                  StrqMode::kLocalSearch, StrqMode::kExact};
constexpr int kTpqLength = 8;
constexpr size_t kK = 5;

TrajectoryDataset SmallDataset(uint64_t seed = 77) {
  return test::MakePortoDataset({40, 50, 15, 50, seed});
}

std::vector<QueryRequest> MakeRequests(const std::vector<QuerySpec>& queries,
                                       const std::vector<WindowSpec>& windows) {
  std::vector<QueryRequest> requests;
  for (StrqMode mode : kAllModes) {
    for (const QuerySpec& q : queries) {
      requests.push_back(StrqRequest{q, mode});
      requests.push_back(TpqRequest{q, kTpqLength, mode});
    }
    for (const WindowSpec& w : windows) {
      requests.push_back(WindowRequest{w, mode});
    }
  }
  for (const QuerySpec& q : queries) requests.push_back(KnnRequest{q, kK});
  return requests;
}

Payload EvalSerial(const QueryEngine& engine, const QueryRequest& request) {
  if (const auto* r = std::get_if<StrqRequest>(&request)) {
    return engine.Strq(r->query, r->mode);
  }
  if (const auto* r = std::get_if<WindowRequest>(&request)) {
    return engine.WindowQuery(r->window.window, r->window.tick, r->mode);
  }
  if (const auto* r = std::get_if<KnnRequest>(&request)) {
    return engine.NearestTrajectories(r->query, r->k);
  }
  const auto& r = std::get<TpqRequest>(request);
  return engine.Tpq(r.query, r.length, r.mode);
}

/// One backend under conformance test: a factory producing the backend
/// serving view A, the two swappable views with their serial oracles and
/// expected seal epochs, and a view of ANOTHER backend's type that
/// UpdateView must reject.
struct BackendCase {
  std::shared_ptr<const TrajectoryDataset> data;
  double cell_size = 0;
  std::function<std::unique_ptr<QueryBackend>(size_t workers)> make;
  ServingView view_a;
  ServingView view_b;
  ServingView wrong_view;
  std::unique_ptr<QueryEngine> oracle_a;
  std::unique_ptr<QueryEngine> oracle_b;
  uint64_t epoch_a = 0;
  uint64_t epoch_b = 0;
};

enum class BackendKind { kSingle, kSharded, kLive };

std::string KindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSingle:
      return "Single";
    case BackendKind::kSharded:
      return "Sharded";
    case BackendKind::kLive:
      return "Live";
  }
  return "?";
}

std::shared_ptr<LiveRepository> BuildLive(const TrajectoryDataset& data,
                                          Tick end) {
  LiveRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 1;
  options.watermark_ticks = 8;
  options.watermark_points = 0;
  auto live = std::make_shared<LiveRepository>(
      [](uint32_t) {
        return std::make_unique<core::PpqTrajectory>(core::MakePpqA());
      },
      options);
  for (Tick t = data.MinTick(); t < end; ++t) {
    const PointBatch batch = data.BatchAt(t);
    if (!batch.empty()) {
      EXPECT_TRUE(live->Append(batch).ok());
    }
  }
  // Seal everything: with the tails empty, the serial engine over the one
  // shard's seal is the byte-exact oracle for this backend.
  live->RollAll();
  live->Quiesce();
  return live;
}

/// Views A and B are two seals of ONE stream: A covers the first half of
/// the day, B the whole day. All backends are 1-shard on the same data,
/// so each view's oracle is the serial engine over its single seal.
BackendCase MakeCase(BackendKind kind) {
  BackendCase c;
  c.data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  const core::PpqOptions options = core::MakePpqA();
  c.cell_size = options.tpi.pi.cell_size;
  const Tick mid = (c.data->MinTick() + c.data->MaxTick()) / 2;

  switch (kind) {
    case BackendKind::kSingle: {
      core::PpqTrajectory method(options);
      for (Tick t = c.data->MinTick(); t < mid; ++t) {
        const TimeSlice slice = c.data->SliceAt(t);
        if (!slice.empty()) method.ObserveSlice(slice);
      }
      const SnapshotPtr seal_a = method.Seal();
      for (Tick t = mid; t < c.data->MaxTick(); ++t) {
        const TimeSlice slice = c.data->SliceAt(t);
        if (!slice.empty()) method.ObserveSlice(slice);
      }
      method.Finish();
      const SnapshotPtr seal_b = method.Seal();
      c.oracle_a =
          std::make_unique<QueryEngine>(seal_a, c.data.get(), c.cell_size);
      c.oracle_b =
          std::make_unique<QueryEngine>(seal_b, c.data.get(), c.cell_size);
      c.view_a = seal_a;
      c.view_b = seal_b;
      c.wrong_view = RepositorySnapshotPtr{};
      c.epoch_b = 1;  // one UpdateView swap from A to B
      c.make = [seal_a, data = c.data,
                cell = c.cell_size](size_t workers)
          -> std::unique_ptr<QueryBackend> {
        core::QueryService::Options o;
        o.num_threads = workers;
        o.raw = data;
        o.cell_size = cell;
        return std::make_unique<core::QueryService>(seal_a, o);
      };
      break;
    }
    case BackendKind::kSharded: {
      ShardedRepository::Options ro;
      ro.num_shards = 1;
      ro.num_threads = 2;
      ShardedRepository repo(
          [](uint32_t) {
            return std::make_unique<core::PpqTrajectory>(core::MakePpqA());
          },
          ro);
      for (Tick t = c.data->MinTick(); t < mid; ++t) {
        const TimeSlice slice = c.data->SliceAt(t);
        if (!slice.empty()) repo.ObserveSlice(slice);
      }
      const RepositorySnapshotPtr repo_a = repo.SealAll();
      for (Tick t = mid; t < c.data->MaxTick(); ++t) {
        const TimeSlice slice = c.data->SliceAt(t);
        if (!slice.empty()) repo.ObserveSlice(slice);
      }
      repo.Finish();
      const RepositorySnapshotPtr repo_b = repo.SealAll();
      c.oracle_a = std::make_unique<QueryEngine>(repo_a->shards()[0],
                                                 c.data.get(), c.cell_size);
      c.oracle_b = std::make_unique<QueryEngine>(repo_b->shards()[0],
                                                 c.data.get(), c.cell_size);
      c.view_a = repo_a;
      c.view_b = repo_b;
      c.wrong_view = SnapshotPtr{};
      c.epoch_b = 1;
      c.make = [repo_a, data = c.data,
                cell = c.cell_size](size_t workers)
          -> std::unique_ptr<QueryBackend> {
        ShardedQueryService::Options o;
        o.num_threads = workers;
        o.raw = data;
        o.cell_size = cell;
        return std::make_unique<ShardedQueryService>(repo_a, o);
      };
      break;
    }
    case BackendKind::kLive: {
      const auto live_a = BuildLive(*c.data, mid);
      const auto live_b = BuildLive(*c.data, c.data->MaxTick());
      c.oracle_a = std::make_unique<QueryEngine>(
          live_a->ShardView(0)->sealed, c.data.get(), c.cell_size);
      c.oracle_b = std::make_unique<QueryEngine>(
          live_b->ShardView(0)->sealed, c.data.get(), c.cell_size);
      c.view_a = std::shared_ptr<const LiveRepository>(live_a);
      c.view_b = std::shared_ptr<const LiveRepository>(live_b);
      c.wrong_view = SnapshotPtr{};
      // Live freshness is the repository's seal generation, not a swap
      // count: quiesced repositories report it deterministically.
      c.epoch_a = live_a->MinSealEpoch();
      c.epoch_b = live_b->MinSealEpoch();
      c.make = [live_a, data = c.data,
                cell = c.cell_size](size_t workers)
          -> std::unique_ptr<QueryBackend> {
        LiveQueryService::Options o;
        o.num_threads = workers;
        o.raw = data;
        o.cell_size = cell;
        return std::make_unique<LiveQueryService>(live_a, o);
      };
      break;
    }
  }
  return c;
}

/// Submit every request and require byte-parity with \p oracle plus
/// populated, internally consistent responses at \p epoch.
void ExpectMatchesOracle(QueryBackend& backend, const QueryEngine& oracle,
                         uint64_t epoch,
                         const std::vector<QueryRequest>& requests,
                         const std::string& label) {
  auto futures = backend.SubmitBatch(requests);
  ASSERT_EQ(futures.size(), requests.size());
  size_t total_decoded = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse response = futures[i].get();
    EXPECT_TRUE(response.ok()) << label << " request " << i;
    EXPECT_EQ(response.kind, KindOf(requests[i])) << label << " request " << i;
    EXPECT_EQ(response.result, EvalSerial(oracle, requests[i]))
        << label << " request " << i;
    EXPECT_EQ(response.stats.seal_epoch, epoch) << label << " request " << i;
    total_decoded += response.stats.points_decoded;
  }
  EXPECT_GT(total_decoded, 0u) << label;
}

class QueryBackendConformance
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(QueryBackendConformance, ParityAgainstSerialOracle) {
  const BackendCase c = MakeCase(GetParam());
  Rng rng(17);
  const auto queries = core::SampleQueries(*c.data, 30, &rng);
  const auto windows = test::SampleWindows(*c.data, 15, &rng);
  const auto requests = MakeRequests(queries, windows);

  for (size_t workers : {size_t{1}, size_t{4}}) {
    const auto backend = c.make(workers);
    EXPECT_EQ(backend->num_threads(), workers);
    const std::string label =
        KindName(GetParam()) + "@" + std::to_string(workers) + "w";
    ExpectMatchesOracle(*backend, *c.oracle_a, c.epoch_a, requests,
                        "cold " + label);
    // Warm decode scratch must not change results.
    ExpectMatchesOracle(*backend, *c.oracle_a, c.epoch_a, requests,
                        "warm " + label);
  }
}

TEST_P(QueryBackendConformance, UpdateViewSwapsAndRejectsWrongViewType) {
  const BackendCase c = MakeCase(GetParam());
  Rng rng(19);
  const auto queries = core::SampleQueries(*c.data, 15, &rng);
  const auto windows = test::SampleWindows(*c.data, 8, &rng);
  const auto requests = MakeRequests(queries, windows);

  const auto backend = c.make(2);
  ExpectMatchesOracle(*backend, *c.oracle_a, c.epoch_a, requests, "pre-swap");
  backend->UpdateView(c.view_b);
  ExpectMatchesOracle(*backend, *c.oracle_b, c.epoch_b, requests, "post-swap");

  // Another backend's view type is rejected — and nothing was swapped.
  EXPECT_THROW(backend->UpdateView(c.wrong_view), std::invalid_argument);
  ExpectMatchesOracle(*backend, *c.oracle_b, c.epoch_b, requests,
                      "post-reject");
}

TEST_P(QueryBackendConformance, DestructionDrainsSubmittedRequests) {
  const BackendCase c = MakeCase(GetParam());
  Rng rng(11);
  std::vector<QueryRequest> requests;
  for (const QuerySpec& q : core::SampleQueries(*c.data, 60, &rng)) {
    requests.push_back(StrqRequest{q, StrqMode::kExact});
  }

  std::vector<std::future<QueryResponse>> futures;
  {
    const auto backend = c.make(2);
    futures = backend->SubmitBatch(requests);
  }  // destroyed immediately: every future must still resolve, correctly

  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].valid());
    const QueryResponse response = futures[i].get();
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.result, EvalSerial(*c.oracle_a, requests[i]));
  }
}

TEST_P(QueryBackendConformance, CancelPendingFailsExactlyTheQueued) {
  const BackendCase c = MakeCase(GetParam());
  Rng rng(13);
  std::vector<QueryRequest> requests;
  for (const QuerySpec& q : core::SampleQueries(*c.data, 200, &rng)) {
    requests.push_back(StrqRequest{q, StrqMode::kExact});
  }

  const auto backend = c.make(1);
  auto futures = backend->SubmitBatch(std::move(requests));
  const size_t cancelled = backend->CancelPending();
  ASSERT_LE(cancelled, futures.size());

  size_t observed = 0;
  for (auto& future : futures) {
    const QueryResponse response = future.get();
    if (response.ok()) continue;
    EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(response.kind, core::QueryKind::kStrq);
    ++observed;
  }
  EXPECT_EQ(observed, cancelled);

  // After a cancel, the backend still serves.
  Rng rng2(14);
  const QueryResponse after =
      backend
          ->Submit(StrqRequest{core::SampleQueries(*c.data, 1, &rng2)[0],
                               StrqMode::kLocalSearch})
          .get();
  EXPECT_TRUE(after.ok());
}

TEST_P(QueryBackendConformance, SubmittersRaceHotSwap) {
  const BackendCase c = MakeCase(GetParam());
  Rng rng(7);
  const auto queries = core::SampleQueries(*c.data, 20, &rng);
  const auto windows = test::SampleWindows(*c.data, 10, &rng);
  const auto requests = MakeRequests(queries, windows);

  // Serial references against BOTH views: however submissions interleave
  // with swaps, every response must be exactly ONE view's byte-exact
  // answer — never a mix (this is the TSan-checked contract).
  std::vector<Payload> ref_a, ref_b;
  for (const QueryRequest& request : requests) {
    ref_a.push_back(EvalSerial(*c.oracle_a, request));
    ref_b.push_back(EvalSerial(*c.oracle_b, request));
  }

  const auto backend = c.make(4);
  constexpr size_t kSubmitters = 4;
  constexpr int kSwaps = 50;
  std::vector<std::vector<QueryResponse>> responses(kSubmitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (const QueryRequest& request : requests) {
        responses[s].push_back(backend->Submit(request).get());
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    backend->UpdateView((i % 2 == 0) ? c.view_b : c.view_a);
  }
  for (std::thread& t : submitters) t.join();

  for (size_t s = 0; s < kSubmitters; ++s) {
    ASSERT_EQ(responses[s].size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const QueryResponse& response = responses[s][i];
      EXPECT_TRUE(response.ok());
      EXPECT_TRUE(response.result == ref_a[i] || response.result == ref_b[i])
          << "submitter " << s << " request " << i
          << " matches neither view's serial answer";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, QueryBackendConformance,
                         ::testing::Values(BackendKind::kSingle,
                                           BackendKind::kSharded,
                                           BackendKind::kLive),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return KindName(info.param);
                         });

}  // namespace
}  // namespace ppq
