#include <gtest/gtest.h>

#include "baselines/product_quantization.h"
#include "baselines/residual_quantization.h"
#include "baselines/trajstore.h"
#include "core/metrics.h"
#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "datagen/generator.h"

/// \file robustness_test.cc
/// Edge-case and failure-injection coverage across the stack: degenerate
/// datasets (empty, single point, duplicates), adversarial geometry
/// (identical positions, extreme spans), and extreme thresholds. The
/// pipeline must stay well-defined — no crash, bounds still honoured —
/// in every case.

namespace ppq {
namespace {

TimeSlice SliceOf(Tick t, std::vector<Point> points) {
  TimeSlice slice;
  slice.tick = t;
  for (size_t i = 0; i < points.size(); ++i) {
    slice.ids.push_back(static_cast<TrajId>(i));
    slice.positions.push_back(points[i]);
  }
  return slice;
}

// ---------------------------------------------------------------------------
// Degenerate datasets
// ---------------------------------------------------------------------------

TEST(RobustnessTest, EmptyDatasetCompresses) {
  TrajectoryDataset empty;
  core::PpqTrajectory method(core::MakePpqA());
  method.Compress(empty);
  EXPECT_EQ(method.SummaryBytes(), method.summary().Size().Total());
  EXPECT_DOUBLE_EQ(core::SummaryMaeMeters(method, empty), 0.0);
}

TEST(RobustnessTest, SinglePointTrajectory) {
  TrajectoryDataset dataset;
  Trajectory t;
  t.start_tick = 5;
  t.points = {{1.0, 2.0}};
  dataset.Add(t);
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);
  const auto recon = method.Reconstruct(0, 5);
  ASSERT_TRUE(recon.ok());
  EXPECT_LE(recon->DistanceTo({1.0, 2.0}), method.LocalSearchRadius() + 1e-9);
}

TEST(RobustnessTest, AllPointsIdentical) {
  // A parked fleet: every position equal, every tick. Exercises
  // zero-variance autocorrelation windows, degenerate MBRs, singular
  // prediction fits.
  TrajectoryDataset dataset;
  for (int i = 0; i < 5; ++i) {
    Trajectory t;
    t.start_tick = 0;
    t.points.assign(20, Point{3.0, 4.0});
    dataset.Add(t);
  }
  for (const char* name : {"PPQ-A", "PPQ-S", "E-PQ", "Q-trajectory"}) {
    auto method = core::MakeMethod(name, core::PpqOptions{});
    method->Compress(dataset);
    const auto recon = method->Reconstruct(0, 10);
    ASSERT_TRUE(recon.ok()) << name;
    EXPECT_LE(recon->DistanceTo({3.0, 4.0}), 0.0015) << name;
  }
}

TEST(RobustnessTest, TrajectoriesOfWildlyDifferentLengths) {
  TrajectoryDataset dataset;
  Trajectory tiny;
  tiny.start_tick = 0;
  tiny.points = {{0.0, 0.0}, {0.001, 0.0}};
  dataset.Add(tiny);
  Trajectory lengthy;
  lengthy.start_tick = 0;
  for (int i = 0; i < 500; ++i) {
    lengthy.points.push_back({i * 1e-4, 0.5});
  }
  dataset.Add(lengthy);
  core::PpqTrajectory method(core::MakePpqA());
  method.Compress(dataset);
  EXPECT_TRUE(method.Reconstruct(0, 1).ok());
  EXPECT_TRUE(method.Reconstruct(1, 499).ok());
  EXPECT_FALSE(method.Reconstruct(0, 100).ok());
}

TEST(RobustnessTest, LateStartingTrajectories) {
  // Trajectories appearing mid-stream (the incremental partitioner's
  // newcomer path) at a far-away location.
  TrajectoryDataset dataset;
  Trajectory early;
  early.start_tick = 0;
  early.points.assign(30, Point{0.0, 0.0});
  dataset.Add(early);
  Trajectory late;
  late.start_tick = 15;
  late.points.assign(15, Point{10.0, 10.0});
  dataset.Add(late);
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);
  const auto recon = method.Reconstruct(1, 20);
  ASSERT_TRUE(recon.ok());
  EXPECT_LE(recon->DistanceTo({10.0, 10.0}), method.LocalSearchRadius() + 1e-9);
}

// ---------------------------------------------------------------------------
// Extreme thresholds
// ---------------------------------------------------------------------------

TEST(RobustnessTest, MicroscopicEpsilonStillBounded) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories = 5;
  gen.horizon = 30;
  gen.min_length = 10;
  gen.max_length = 30;
  const TrajectoryDataset dataset =
      datagen::PortoLikeGenerator(gen).Generate();
  core::PpqOptions options = core::MakePpqSBasic();
  options.epsilon1 = 1e-7;  // ~1 cm
  core::PpqTrajectory method(options);
  method.Compress(dataset);
  for (const Trajectory& traj : dataset.trajectories()) {
    for (size_t i = 0; i < traj.size(); ++i) {
      const auto recon =
          method.Reconstruct(traj.id, traj.start_tick + static_cast<Tick>(i));
      ASSERT_TRUE(recon.ok());
      EXPECT_LE(recon->DistanceTo(traj.points[i]), 1e-7 + 1e-15);
    }
  }
}

TEST(RobustnessTest, HugeEpsilonCollapsesCodebook) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories = 10;
  gen.horizon = 40;
  const TrajectoryDataset dataset =
      datagen::PortoLikeGenerator(gen).Generate();
  core::PpqOptions options = core::MakeQTrajectory();
  options.epsilon1 = 10.0;  // covers the whole region
  core::PpqTrajectory method(options);
  method.Compress(dataset);
  EXPECT_LE(method.NumCodewords(), 4u);
}

TEST(RobustnessTest, TinyPartitionEpsilonBoundedByPopulation) {
  TimeSlice slice = SliceOf(0, {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  partition::IncrementalPartitioner p({1e-12, 1, 15, true, 42});
  const auto assignment = p.Update(slice.ids, {0.0, 0.0, 1.0, 0.0, 0.0, 1.0}, 2);
  EXPECT_EQ(p.NumPartitions(), 3);
}

// ---------------------------------------------------------------------------
// Baselines under stress
// ---------------------------------------------------------------------------

TEST(RobustnessTest, TrajStoreHandlesPointsOnSplitBoundaries) {
  baselines::TrajStore::Options options;
  options.region = index::Rect{0.0, 0.0, 1.0, 1.0};
  options.leaf_capacity = 4;
  options.enable_index = false;
  baselines::TrajStore store(options);
  // All inserts exactly on the quadrant boundary of the root.
  for (Tick t = 0; t < 10; ++t) {
    store.ObserveSlice(SliceOf(t, {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}));
  }
  store.Finish();
  const auto recon = store.Reconstruct(0, 5);
  ASSERT_TRUE(recon.ok());
  EXPECT_LE(recon->DistanceTo({0.5, 0.5}), 0.0011);
}

TEST(RobustnessTest, ProductQuantizationSinglePointSlices) {
  baselines::BaselineOptions options;
  options.enable_index = false;
  baselines::ProductQuantization pq(options);
  for (Tick t = 0; t < 5; ++t) {
    pq.ObserveSlice(SliceOf(t, {{1.0 + t * 1e-4, 2.0}}));
  }
  pq.Finish();
  const auto recon = pq.Reconstruct(0, 3);
  ASSERT_TRUE(recon.ok());
  EXPECT_LE(recon->DistanceTo({1.0 + 3e-4, 2.0}), options.epsilon1 + 1e-12);
}

TEST(RobustnessTest, ResidualQuantizationExtremeCoarseFactor) {
  baselines::ResidualQuantization::Options options;
  options.coarse_factor = 1000.0;
  options.enable_index = false;
  baselines::ResidualQuantization rq(options);
  for (Tick t = 0; t < 5; ++t) {
    rq.ObserveSlice(SliceOf(t, {{1.0, 2.0}, {1.5, 2.5}}));
  }
  rq.Finish();
  const auto recon = rq.Reconstruct(1, 2);
  ASSERT_TRUE(recon.ok());
  EXPECT_LE(recon->DistanceTo({1.5, 2.5}), options.epsilon1 + 1e-12);
}

// ---------------------------------------------------------------------------
// Query layer
// ---------------------------------------------------------------------------

TEST(RobustnessTest, QueryAtUnpopulatedTickReturnsEmpty) {
  TrajectoryDataset dataset;
  Trajectory t;
  t.start_tick = 10;
  t.points.assign(5, Point{1.0, 1.0});
  dataset.Add(t);
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);
  core::QueryEngine engine(&method, &dataset, 0.001);
  EXPECT_TRUE(engine.Strq({{1.0, 1.0}, 3}, core::StrqMode::kExact).ids.empty());
  EXPECT_TRUE(
      engine.Strq({{1.0, 1.0}, 99}, core::StrqMode::kExact).ids.empty());
}

TEST(RobustnessTest, QueryFarFromAllDataReturnsEmpty) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories = 10;
  gen.horizon = 30;
  const TrajectoryDataset dataset =
      datagen::PortoLikeGenerator(gen).Generate();
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);
  core::QueryEngine engine(&method, &dataset, 0.001);
  const auto result =
      engine.Strq({{120.0, -45.0}, 10}, core::StrqMode::kLocalSearch);
  EXPECT_TRUE(result.ids.empty());
}

TEST(RobustnessTest, TpqWithZeroLength) {
  TrajectoryDataset dataset;
  Trajectory t;
  t.start_tick = 0;
  t.points.assign(10, Point{1.0, 1.0});
  dataset.Add(t);
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);
  core::QueryEngine engine(&method, &dataset, 0.001);
  const auto result = engine.Tpq({{1.0, 1.0}, 0}, 0, core::StrqMode::kExact);
  for (const auto& path : result.paths) EXPECT_TRUE(path.empty());
}

// ---------------------------------------------------------------------------
// Dataset slicing under gaps
// ---------------------------------------------------------------------------

TEST(RobustnessTest, SparseTimelineSlices) {
  TrajectoryDataset dataset;
  Trajectory a;
  a.start_tick = 0;
  a.points.assign(3, Point{0.0, 0.0});
  dataset.Add(a);
  Trajectory b;
  b.start_tick = 100;  // long silent gap in the middle
  b.points.assign(3, Point{1.0, 1.0});
  dataset.Add(b);
  core::PpqTrajectory method(core::MakePpqS());
  method.Compress(dataset);  // must skip the 97 empty ticks cleanly
  EXPECT_TRUE(method.Reconstruct(0, 2).ok());
  EXPECT_TRUE(method.Reconstruct(1, 102).ok());
}

}  // namespace
}  // namespace ppq
