#include "core/query_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/trajstore.h"
#include "core/metrics.h"
#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "tests/test_util.h"

/// \file query_executor_test.cc
/// Executor parity properties: the batched concurrent path (snapshot +
/// QueryExecutor) must return byte-identical results to the serial
/// QueryEngine, at 1 thread and at N threads, across every StrqMode and
/// every member of the MakeMethod family — plus snapshot semantics
/// (immutability under continued encoding, re-seal, UpdateSnapshot).
/// These tests are part of the TSan CI job.

namespace ppq::core {
namespace {

TrajectoryDataset SmallDataset(uint64_t seed = 77) {
  return test::MakePortoDataset({40, 50, 15, 50, seed});
}

using test::SampleWindows;

/// Evaluate the full mixed workload through the serial engine.
struct SerialReference {
  std::vector<StrqResult> strq[3];
  std::vector<StrqResult> window[3];
  std::vector<TpqResult> tpq[3];
  std::vector<std::vector<Neighbor>> knn;
};

constexpr StrqMode kAllModes[] = {StrqMode::kApproximate,
                                  StrqMode::kLocalSearch, StrqMode::kExact};
constexpr int kTpqLength = 8;

SerialReference RunSerial(const QueryEngine& engine,
                          const std::vector<QuerySpec>& queries,
                          const std::vector<WindowSpec>& windows, size_t k) {
  SerialReference ref;
  for (int m = 0; m < 3; ++m) {
    for (const QuerySpec& q : queries) {
      ref.strq[m].push_back(engine.Strq(q, kAllModes[m]));
      ref.tpq[m].push_back(engine.Tpq(q, kTpqLength, kAllModes[m]));
    }
    for (const WindowSpec& w : windows) {
      ref.window[m].push_back(engine.WindowQuery(w.window, w.tick,
                                                 kAllModes[m]));
    }
  }
  for (const QuerySpec& q : queries) {
    ref.knn.push_back(engine.NearestTrajectories(q, k));
  }
  return ref;
}

void ExpectExecutorMatches(QueryExecutor& executor,
                           const SerialReference& ref,
                           const std::vector<QuerySpec>& queries,
                           const std::vector<WindowSpec>& windows, size_t k,
                           const std::string& label) {
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(executor.StrqBatch(queries, kAllModes[m]), ref.strq[m])
        << label << ": strq mode " << m;
    EXPECT_EQ(executor.WindowBatch(windows, kAllModes[m]), ref.window[m])
        << label << ": window mode " << m;
    EXPECT_EQ(executor.TpqBatch(queries, kTpqLength, kAllModes[m]),
              ref.tpq[m])
        << label << ": tpq mode " << m;
  }
  EXPECT_EQ(executor.KnnBatch(queries, k), ref.knn) << label << ": knn";
}

/// Full parity sweep for one compressor: serial engine vs executor at 1
/// and 4 threads, byte-identical across every mode and batch API.
void CheckParity(const Compressor& method, const TrajectoryDataset& data,
                 double cell_size, const std::string& label) {
  Rng rng(17);
  const auto queries = SampleQueries(data, 60, &rng);
  const auto windows = SampleWindows(data, 30, &rng);
  constexpr size_t kK = 5;

  const QueryEngine engine(&method, &data, cell_size);
  const SerialReference ref = RunSerial(engine, queries, windows, kK);

  const SnapshotPtr snapshot = method.Seal();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->name(), method.name());

  const auto raw = std::make_shared<const TrajectoryDataset>(data);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    QueryExecutor::Options options;
    options.num_threads = threads;
    options.raw = raw;
    options.cell_size = cell_size;
    QueryExecutor executor(snapshot, options);
    ExpectExecutorMatches(executor, ref, queries, windows, kK,
                          label + " @" + std::to_string(threads) + "t");
    // Re-run on the warm scratch: memoised prefixes must not change
    // results.
    ExpectExecutorMatches(executor, ref, queries, windows, kK,
                          label + " warm @" + std::to_string(threads) + "t");
  }
}

class ExecutorParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorParity, BatchesMatchSerialEngineAcrossThreadCounts) {
  const TrajectoryDataset data = SmallDataset();
  PpqOptions base;
  auto method = MakeMethod(GetParam(), base);
  method->Compress(data);
  CheckParity(*method, data, base.tpi.pi.cell_size, GetParam());
}

INSTANTIATE_TEST_SUITE_P(MakeMethodFamily, ExecutorParity,
                         ::testing::Values("PPQ-A", "PPQ-A-basic", "PPQ-S",
                                           "PPQ-S-basic", "E-PQ",
                                           "Q-trajectory"));

TEST(ExecutorParityTest, MaterializedSnapshotTrajStore) {
  const TrajectoryDataset data = SmallDataset(5);
  baselines::TrajStore::Options options;
  options.region = {-9.0, 41.0, -8.0, 41.5};
  baselines::TrajStore method(options);
  method.Compress(data);
  CheckParity(method, data, options.tpi.pi.cell_size, "TrajStore");
}

TEST(ExecutorParityTest, FixedPerTickModeParity) {
  const TrajectoryDataset data = SmallDataset(21);
  PpqOptions options = MakePpqA();
  options.mode = QuantizationMode::kFixedPerTick;
  options.fixed_bits = 6;
  PpqTrajectory method(options);
  method.Compress(data);
  CheckParity(method, data, options.tpi.pi.cell_size, "PPQ-A fixed");
}

TEST(SnapshotTest, MethodWithoutIndexServesEmpty) {
  const TrajectoryDataset data = SmallDataset();
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(data);
  const SnapshotPtr snapshot = method.Seal();
  EXPECT_EQ(snapshot->index(), nullptr);

  QueryExecutor::Options exec_options;
  exec_options.num_threads = 2;
  exec_options.raw = std::make_shared<const TrajectoryDataset>(data);
  exec_options.cell_size = options.tpi.pi.cell_size;
  QueryExecutor executor(snapshot, exec_options);
  Rng rng(3);
  const auto queries = SampleQueries(data, 10, &rng);
  for (const StrqResult& r : executor.StrqBatch(queries, StrqMode::kExact)) {
    EXPECT_TRUE(r.ids.empty());
  }
}

TEST(SnapshotTest, SealIsImmutableUnderContinuedEncoding) {
  // Seal mid-stream, keep encoding: the sealed snapshot must keep
  // answering exactly as it did at seal time.
  const TrajectoryDataset data = SmallDataset(31);
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);

  const Tick mid = (data.MinTick() + data.MaxTick()) / 2;
  for (Tick t = data.MinTick(); t < mid; ++t) {
    const TimeSlice slice = data.SliceAt(t);
    if (!slice.empty()) method.ObserveSlice(slice);
  }
  const SnapshotPtr sealed = method.Seal();

  QueryExecutor::Options exec_options;
  exec_options.num_threads = 2;
  exec_options.raw = std::make_shared<const TrajectoryDataset>(data);
  exec_options.cell_size = options.tpi.pi.cell_size;
  QueryExecutor executor(sealed, exec_options);

  Rng rng(7);
  std::vector<QuerySpec> queries;
  for (const QuerySpec& q : SampleQueries(data, 40, &rng)) {
    if (q.tick < mid) queries.push_back(q);
  }
  ASSERT_FALSE(queries.empty());
  const auto before = executor.StrqBatch(queries, StrqMode::kLocalSearch);

  // Writer continues: encode the rest of the day and finish.
  for (Tick t = mid; t < data.MaxTick(); ++t) {
    const TimeSlice slice = data.SliceAt(t);
    if (!slice.empty()) method.ObserveSlice(slice);
  }
  method.Finish();

  EXPECT_EQ(executor.StrqBatch(queries, StrqMode::kLocalSearch), before);

  // Re-seal and swap: the executor now also sees the later ticks.
  executor.UpdateSnapshot(method.Seal());
  Rng rng2(9);
  std::vector<QuerySpec> late;
  for (const QuerySpec& q : SampleQueries(data, 60, &rng2)) {
    if (q.tick >= mid) late.push_back(q);
  }
  ASSERT_FALSE(late.empty());
  size_t hits = 0;
  for (const StrqResult& r :
       executor.StrqBatch(late, StrqMode::kLocalSearch)) {
    hits += r.ids.size();
  }
  EXPECT_GT(hits, 0u);

  // And the re-sealed snapshot agrees with the serial engine on the final
  // state.
  CheckParity(method, data, options.tpi.pi.cell_size, "post-reseal");
}

TEST(SnapshotTest, QueryEngineServesSnapshotsToo) {
  const TrajectoryDataset data = SmallDataset(41);
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(data);

  const QueryEngine live(&method, &data, options.tpi.pi.cell_size);
  const QueryEngine sealed(method.Seal(), &data, options.tpi.pi.cell_size);
  Rng rng(11);
  for (const QuerySpec& q : SampleQueries(data, 40, &rng)) {
    for (StrqMode mode : kAllModes) {
      EXPECT_EQ(sealed.Strq(q, mode), live.Strq(q, mode));
    }
    EXPECT_EQ(sealed.NearestTrajectories(q, 4),
              live.NearestTrajectories(q, 4));
  }
}

TEST(SnapshotTest, SnapshotOutlivesCompressor) {
  const TrajectoryDataset data = SmallDataset(51);
  SnapshotPtr snapshot;
  size_t expected_records = 0;
  {
    PpqOptions options = MakePpqA();
    PpqTrajectory method(options);
    method.Compress(data);
    expected_records = method.summary().NumTrajectories();
    snapshot = method.Seal();
  }  // writer destroyed; the seal must be self-contained
  EXPECT_EQ(snapshot->NumTrajectories(), expected_records);
  QueryExecutor::Options exec_options;
  exec_options.num_threads = 2;
  exec_options.raw = std::make_shared<const TrajectoryDataset>(data);
  QueryExecutor executor(snapshot, exec_options);
  Rng rng(13);
  const auto queries = SampleQueries(data, 20, &rng);
  size_t hits = 0;
  for (const StrqResult& r :
       executor.StrqBatch(queries, StrqMode::kLocalSearch)) {
    hits += r.ids.size();
  }
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace ppq::core
