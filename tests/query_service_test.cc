#include "core/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "baselines/trajstore.h"
#include "core/metrics.h"
#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "tests/test_util.h"

/// \file query_service_test.cc
/// The async serving front-end: every request type of the unified
/// QueryRequest vocabulary must resolve byte-identical to the serial
/// QueryEngine at 1 and 4 workers — across the whole MakeMethod family,
/// materialized (TrajStore) snapshots, and fixed-per-tick mode (the
/// parity oracles formerly living in query_executor_test.cc; the
/// deprecated executor shims are gone). The hot-swap race, drain-on-
/// destruction, and cancellation-accounting contracts are now covered for
/// ALL core::QueryBackend implementations at once by the conformance
/// suite (query_backend_test.cc); this suite keeps what is specific to
/// single-snapshot serving — eager scratch reclamation on swap, the
/// shared_ptr-owned verification dataset that closes the old raw-pointer
/// lifetime footgun, and seals staying immutable under continued
/// encoding / outliving their compressor.

namespace ppq::core {
namespace {

TrajectoryDataset SmallDataset(uint64_t seed = 77) {
  return test::MakePortoDataset({40, 50, 15, 50, seed});
}

constexpr StrqMode kAllModes[] = {StrqMode::kApproximate,
                                  StrqMode::kLocalSearch, StrqMode::kExact};
constexpr int kTpqLength = 8;
constexpr size_t kK = 5;

/// The full mixed request stream for \p queries/\p windows: every request
/// type x StrqMode, interleaved.
std::vector<QueryRequest> MakeRequests(const std::vector<QuerySpec>& queries,
                                       const std::vector<WindowSpec>& windows) {
  std::vector<QueryRequest> requests;
  for (StrqMode mode : kAllModes) {
    for (const QuerySpec& q : queries) {
      requests.push_back(StrqRequest{q, mode});
      requests.push_back(TpqRequest{q, kTpqLength, mode});
    }
    for (const WindowSpec& w : windows) {
      requests.push_back(WindowRequest{w, mode});
    }
  }
  for (const QuerySpec& q : queries) {
    requests.push_back(KnnRequest{q, kK});
  }
  return requests;
}

/// Serial-engine answer for one request, as the response payload variant.
std::variant<StrqResult, std::vector<Neighbor>, TpqResult> EvalSerial(
    const QueryEngine& engine, const QueryRequest& request) {
  if (const auto* r = std::get_if<StrqRequest>(&request)) {
    return engine.Strq(r->query, r->mode);
  }
  if (const auto* r = std::get_if<WindowRequest>(&request)) {
    return engine.WindowQuery(r->window.window, r->window.tick, r->mode);
  }
  if (const auto* r = std::get_if<KnnRequest>(&request)) {
    return engine.NearestTrajectories(r->query, r->k);
  }
  const auto& r = std::get<TpqRequest>(request);
  return engine.Tpq(r.query, r.length, r.mode);
}

/// Submit every request and require byte-parity with the serial engine
/// plus populated responses (kind, status, stats).
void ExpectServiceMatchesSerial(QueryService& service,
                                const QueryEngine& engine,
                                const std::vector<QueryRequest>& requests,
                                const std::string& label) {
  auto futures = service.SubmitBatch(requests);
  ASSERT_EQ(futures.size(), requests.size());
  size_t total_decoded = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse response = futures[i].get();
    EXPECT_TRUE(response.ok()) << label << " request " << i;
    EXPECT_EQ(response.kind, KindOf(requests[i])) << label << " request " << i;
    EXPECT_EQ(response.result, EvalSerial(engine, requests[i]))
        << label << " request " << i;
    total_decoded += response.stats.points_decoded;
    EXPECT_GE(response.stats.eval_micros, response.stats.decode_micros)
        << label << " request " << i;
  }
  // The workload reconstructs many candidates; the counters must see them.
  EXPECT_GT(total_decoded, 0u) << label;
}

class ServiceParity : public ::testing::TestWithParam<size_t> {};

TEST_P(ServiceParity, AllRequestTypesMatchSerialEngine) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(*data);

  const QueryEngine engine(&method, data.get(), options.tpi.pi.cell_size);
  Rng rng(17);
  const auto queries = SampleQueries(*data, 40, &rng);
  const auto windows = test::SampleWindows(*data, 20, &rng);
  const auto requests = MakeRequests(queries, windows);

  QueryService::Options serve_options;
  serve_options.num_threads = GetParam();
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(method.Seal(), serve_options);
  EXPECT_EQ(service.num_threads(), GetParam());

  ExpectServiceMatchesSerial(service, engine, requests,
                             "cold @" + std::to_string(GetParam()) + "w");
  // Warm decode scratch must not change results.
  ExpectServiceMatchesSerial(service, engine, requests,
                             "warm @" + std::to_string(GetParam()) + "w");
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ServiceParity,
                         ::testing::Values(size_t{1}, size_t{4}));

/// Full parity sweep for one sealed compressor: serial engine vs service
/// at 1 and 4 workers, cold and warm scratch (the former executor-suite
/// oracle, now speaking the request vocabulary directly).
void CheckServiceParity(const Compressor& method,
                        const std::shared_ptr<const TrajectoryDataset>& data,
                        double cell_size, const std::string& label) {
  const QueryEngine engine(&method, data.get(), cell_size);
  Rng rng(17);
  const auto queries = SampleQueries(*data, 40, &rng);
  const auto windows = test::SampleWindows(*data, 20, &rng);
  const auto requests = MakeRequests(queries, windows);

  const SnapshotPtr snapshot = method.Seal();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->name(), method.name());

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryService::Options options;
    options.num_threads = workers;
    options.raw = data;
    options.cell_size = cell_size;
    QueryService service(snapshot, options);
    ExpectServiceMatchesSerial(service, engine, requests,
                               label + " @" + std::to_string(workers) + "w");
    // Re-run on the warm scratch: memoised prefixes must not change
    // results.
    ExpectServiceMatchesSerial(
        service, engine, requests,
        label + " warm @" + std::to_string(workers) + "w");
  }
}

class ServiceParityFamily : public ::testing::TestWithParam<const char*> {};

TEST_P(ServiceParityFamily, MatchesSerialEngineAcrossWorkerCounts) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  PpqOptions base;
  auto method = MakeMethod(GetParam(), base);
  method->Compress(*data);
  CheckServiceParity(*method, data, base.tpi.pi.cell_size, GetParam());
}

INSTANTIATE_TEST_SUITE_P(MakeMethodFamily, ServiceParityFamily,
                         ::testing::Values("PPQ-A", "PPQ-A-basic", "PPQ-S",
                                           "PPQ-S-basic", "E-PQ",
                                           "Q-trajectory"));

TEST(QueryServiceTest, FixedPerTickModeParity) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(21));
  PpqOptions options = MakePpqA();
  options.mode = QuantizationMode::kFixedPerTick;
  options.fixed_bits = 6;
  PpqTrajectory method(options);
  method.Compress(*data);
  CheckServiceParity(method, data, options.tpi.pi.cell_size, "PPQ-A fixed");
}

TEST(QueryServiceTest, MaterializedSnapshotParity) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(5));
  baselines::TrajStore::Options options;
  options.region = {-9.0, 41.0, -8.0, 41.5};
  baselines::TrajStore method(options);
  method.Compress(*data);

  const QueryEngine engine(&method, data.get(), options.tpi.pi.cell_size);
  Rng rng(23);
  const auto queries = SampleQueries(*data, 25, &rng);
  const auto windows = test::SampleWindows(*data, 12, &rng);

  QueryService::Options serve_options;
  serve_options.num_threads = 2;
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(method.Seal(), serve_options);
  ExpectServiceMatchesSerial(service, engine, MakeRequests(queries, windows),
                             "TrajStore");
}

TEST(QueryServiceTest, PerQueryStatsCountVerificationCandidates) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(*data);

  QueryService::Options serve_options;
  serve_options.num_threads = 1;
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(method.Seal(), serve_options);

  Rng rng(29);
  for (const QuerySpec& q : SampleQueries(*data, 20, &rng)) {
    const QueryResponse response =
        service.Submit(StrqRequest{q, StrqMode::kExact}).get();
    // The stats candidate counter is exactly the result's (Table 4).
    EXPECT_EQ(response.stats.candidates_visited,
              response.strq().candidates_visited);
    // Exact STRQ on a populated cell must have decoded something.
    if (!response.strq().ids.empty()) {
      EXPECT_GT(response.stats.points_decoded, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Swap semantics specific to the single-snapshot backend
// (the generic hot-swap race lives in query_backend_test.cc)
// ---------------------------------------------------------------------------

TEST(QueryServiceConcurrencyTest, HotSwapReclaimsRetiredSealEagerly) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(71));
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(*data);
  SnapshotPtr seal_a = method.Seal();
  const SnapshotPtr seal_b = method.Seal();

  QueryService::Options serve_options;
  serve_options.num_threads = 3;
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(seal_a, serve_options);

  // Serve traffic so every worker may have pinned seal A in its scratch.
  Rng rng(3);
  std::vector<QueryRequest> requests;
  for (const QuerySpec& q : SampleQueries(*data, 60, &rng)) {
    requests.push_back(StrqRequest{q, StrqMode::kLocalSearch});
  }
  for (auto& future : service.SubmitBatch(requests)) future.get();

  // After the swap — with NO further traffic — no worker may still hold
  // seal A: the only remaining reference is this test's handle.
  service.UpdateView(seal_b);
  EXPECT_EQ(seal_a.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Lifetime: the raw-dataset footgun is structurally closed
// ---------------------------------------------------------------------------

TEST(QueryServiceLifetimeTest, ServiceOwnsVerificationDataset) {
  PpqOptions options = MakePpqA();
  std::unique_ptr<QueryService> service;
  std::vector<QueryRequest> requests;
  std::vector<std::variant<StrqResult, std::vector<Neighbor>, TpqResult>>
      expected;
  {
    // The dataset's only named reference dies with this scope; the
    // service's shared_ptr keeps exact-mode verification alive. (Before
    // the redesign this was a dangling raw pointer — ASan caught it as a
    // use-after-free in exactly this shape.)
    const auto data =
        std::make_shared<const TrajectoryDataset>(SmallDataset(61));
    PpqTrajectory method(options);
    method.Compress(*data);
    const QueryEngine engine(&method, data.get(), options.tpi.pi.cell_size);
    Rng rng(19);
    for (const QuerySpec& q : SampleQueries(*data, 30, &rng)) {
      requests.push_back(StrqRequest{q, StrqMode::kExact});
      expected.push_back(EvalSerial(engine, requests.back()));
    }

    QueryService::Options serve_options;
    serve_options.num_threads = 2;
    serve_options.raw = data;
    serve_options.cell_size = options.tpi.pi.cell_size;
    service = std::make_unique<QueryService>(method.Seal(), serve_options);
  }

  auto futures = service->SubmitBatch(requests);
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().result, expected[i]) << "request " << i;
  }
}

TEST(QueryServiceLifetimeTest, RejectsMismatchedVerificationDataset) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(*data);
  const SnapshotPtr snapshot = method.Seal();

  // A dataset with fewer trajectories than the snapshot serves cannot be
  // the compression source; the old API silently indexed out of bounds.
  QueryService::Options serve_options;
  serve_options.num_threads = 1;
  serve_options.raw = std::make_shared<const TrajectoryDataset>(
      test::MakePortoDataset({3, 50, 15, 50, 99}));
  EXPECT_THROW(QueryService(snapshot, serve_options), std::invalid_argument);

  QueryService::Options null_snapshot_options;
  null_snapshot_options.num_threads = 1;
  EXPECT_THROW(QueryService(nullptr, null_snapshot_options),
               std::invalid_argument);

  // UpdateView validates the same way; the served seal is unchanged
  // after a rejected swap.
  serve_options.raw = data;
  QueryService service(snapshot, serve_options);
  EXPECT_THROW(service.UpdateView(SnapshotPtr{}), std::invalid_argument);
  EXPECT_EQ(service.snapshot().get(), snapshot.get());
}

// ---------------------------------------------------------------------------
// Snapshot semantics through the service (formerly query_executor_test.cc)
// ---------------------------------------------------------------------------

/// Submit one StrqRequest per query and collect the StrqResult payloads.
std::vector<StrqResult> ServeStrq(QueryService& service,
                                  const std::vector<QuerySpec>& queries,
                                  StrqMode mode) {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const QuerySpec& q : queries) requests.push_back(StrqRequest{q, mode});
  std::vector<StrqResult> results;
  results.reserve(queries.size());
  for (auto& future : service.SubmitBatch(std::move(requests))) {
    QueryResponse response = future.get();
    EXPECT_TRUE(response.ok());
    results.push_back(std::move(std::get<StrqResult>(response.result)));
  }
  return results;
}

TEST(SnapshotTest, MethodWithoutIndexServesEmpty) {
  const auto data = std::make_shared<const TrajectoryDataset>(SmallDataset());
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(*data);
  const SnapshotPtr snapshot = method.Seal();
  EXPECT_EQ(snapshot->index(), nullptr);

  QueryService::Options serve_options;
  serve_options.num_threads = 2;
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(snapshot, serve_options);
  Rng rng(3);
  const auto queries = SampleQueries(*data, 10, &rng);
  for (const StrqResult& r : ServeStrq(service, queries, StrqMode::kExact)) {
    EXPECT_TRUE(r.ids.empty());
  }
}

TEST(SnapshotTest, SealIsImmutableUnderContinuedEncoding) {
  // Seal mid-stream, keep encoding: the sealed snapshot must keep
  // answering exactly as it did at seal time.
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(31));
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);

  const Tick mid = (data->MinTick() + data->MaxTick()) / 2;
  for (Tick t = data->MinTick(); t < mid; ++t) {
    const TimeSlice slice = data->SliceAt(t);
    if (!slice.empty()) method.ObserveSlice(slice);
  }
  const SnapshotPtr sealed = method.Seal();

  QueryService::Options serve_options;
  serve_options.num_threads = 2;
  serve_options.raw = data;
  serve_options.cell_size = options.tpi.pi.cell_size;
  QueryService service(sealed, serve_options);

  Rng rng(7);
  std::vector<QuerySpec> queries;
  for (const QuerySpec& q : SampleQueries(*data, 40, &rng)) {
    if (q.tick < mid) queries.push_back(q);
  }
  ASSERT_FALSE(queries.empty());
  const auto before = ServeStrq(service, queries, StrqMode::kLocalSearch);

  // Writer continues: encode the rest of the day and finish.
  for (Tick t = mid; t < data->MaxTick(); ++t) {
    const TimeSlice slice = data->SliceAt(t);
    if (!slice.empty()) method.ObserveSlice(slice);
  }
  method.Finish();

  EXPECT_EQ(ServeStrq(service, queries, StrqMode::kLocalSearch), before);

  // Re-seal and swap: the service now also sees the later ticks.
  service.UpdateView(method.Seal());
  Rng rng2(9);
  std::vector<QuerySpec> late;
  for (const QuerySpec& q : SampleQueries(*data, 60, &rng2)) {
    if (q.tick >= mid) late.push_back(q);
  }
  ASSERT_FALSE(late.empty());
  size_t hits = 0;
  for (const StrqResult& r :
       ServeStrq(service, late, StrqMode::kLocalSearch)) {
    hits += r.ids.size();
  }
  EXPECT_GT(hits, 0u);

  // And the re-sealed snapshot agrees with the serial engine on the final
  // state.
  CheckServiceParity(method, data, options.tpi.pi.cell_size, "post-reseal");
}

TEST(SnapshotTest, QueryEngineServesSnapshotsToo) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(41));
  PpqOptions options = MakePpqA();
  PpqTrajectory method(options);
  method.Compress(*data);

  const QueryEngine live(&method, data.get(), options.tpi.pi.cell_size);
  const QueryEngine sealed(method.Seal(), data.get(),
                           options.tpi.pi.cell_size);
  Rng rng(11);
  for (const QuerySpec& q : SampleQueries(*data, 40, &rng)) {
    for (StrqMode mode : kAllModes) {
      EXPECT_EQ(sealed.Strq(q, mode), live.Strq(q, mode));
    }
    EXPECT_EQ(sealed.NearestTrajectories(q, 4),
              live.NearestTrajectories(q, 4));
  }
}

TEST(SnapshotTest, SnapshotOutlivesCompressor) {
  const auto data =
      std::make_shared<const TrajectoryDataset>(SmallDataset(51));
  SnapshotPtr snapshot;
  size_t expected_records = 0;
  {
    PpqOptions options = MakePpqA();
    PpqTrajectory method(options);
    method.Compress(*data);
    expected_records = method.summary().NumTrajectories();
    snapshot = method.Seal();
  }  // writer destroyed; the seal must be self-contained
  EXPECT_EQ(snapshot->NumTrajectories(), expected_records);
  QueryService::Options serve_options;
  serve_options.num_threads = 2;
  serve_options.raw = data;
  QueryService service(snapshot, serve_options);
  Rng rng(13);
  const auto queries = SampleQueries(*data, 20, &rng);
  size_t hits = 0;
  for (const StrqResult& r :
       ServeStrq(service, queries, StrqMode::kLocalSearch)) {
    hits += r.ids.size();
  }
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace ppq::core
