#include <gtest/gtest.h>

#include <cstdio>

#include "common/geo.h"
#include "datagen/csv.h"
#include "datagen/generator.h"

namespace ppq::datagen {
namespace {

TEST(PortoGeneratorTest, RespectsCounts) {
  GeneratorOptions options;
  options.num_trajectories = 25;
  options.horizon = 100;
  options.min_length = 30;
  options.max_length = 80;
  const TrajectoryDataset ds = PortoLikeGenerator(options).Generate();
  EXPECT_EQ(ds.size(), 25u);
  for (const Trajectory& t : ds.trajectories()) {
    EXPECT_GE(t.size(), 30u);
    EXPECT_LE(t.size(), 80u);
    EXPECT_GE(t.start_tick, 0);
    EXPECT_LE(t.end_tick(), 100);
  }
}

TEST(PortoGeneratorTest, DeterministicBySeed) {
  GeneratorOptions options;
  options.num_trajectories = 5;
  options.seed = 99;
  const TrajectoryDataset a = PortoLikeGenerator(options).Generate();
  const TrajectoryDataset b = PortoLikeGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i].points[j], b[i].points[j]);
    }
  }
  options.seed = 100;
  const TrajectoryDataset c = PortoLikeGenerator(options).Generate();
  EXPECT_NE(a[0].points[5], c[0].points[5]);
}

TEST(PortoGeneratorTest, PointsNearRegion) {
  GeneratorOptions options;
  options.num_trajectories = 20;
  const TrajectoryDataset ds = PortoLikeGenerator(options).Generate();
  const BoundingBox region = PortoLikeGenerator::Region();
  // Soft steering keeps points within a small margin of the region.
  const double margin = 0.02;
  for (const Trajectory& t : ds.trajectories()) {
    for (const Point& p : t.points) {
      EXPECT_GE(p.x, region.min_x - margin);
      EXPECT_LE(p.x, region.max_x + margin);
      EXPECT_GE(p.y, region.min_y - margin);
      EXPECT_LE(p.y, region.max_y + margin);
    }
  }
}

TEST(PortoGeneratorTest, StepsAreVehicleScale) {
  GeneratorOptions options;
  options.num_trajectories = 10;
  const TrajectoryDataset ds = PortoLikeGenerator(options).Generate();
  // Urban taxi at 15 s ticks: steps should be below ~500 m.
  for (const Trajectory& t : ds.trajectories()) {
    for (size_t i = 1; i < t.points.size(); ++i) {
      const double step_m =
          DegreeDistanceMeters(t.points[i], t.points[i - 1]);
      EXPECT_LT(step_m, 500.0);
    }
  }
}

TEST(GeoLifeGeneratorTest, LongTrajectoriesLargeSpan) {
  GeneratorOptions options = GeoLifeLikeGenerator::DefaultOptions();
  options.num_trajectories = 10;
  const TrajectoryDataset ds = GeoLifeLikeGenerator(options).Generate();
  EXPECT_EQ(ds.size(), 10u);
  // GeoLife-like span must dwarf the Porto-like span (the property the
  // paper's GeoLife observations rest on).
  const BoundingBox bounds = ds.Bounds();
  EXPECT_GT(bounds.width() + bounds.height(),
            PortoLikeGenerator::Region().width() +
                PortoLikeGenerator::Region().height());
  size_t longest = 0;
  for (const Trajectory& t : ds.trajectories()) {
    longest = std::max(longest, t.size());
  }
  EXPECT_GT(longest, 500u);
}

TEST(SubPortoTest, ExpandsByVariantsPlusOne) {
  GeneratorOptions options;
  options.num_trajectories = 8;
  const TrajectoryDataset base = PortoLikeGenerator(options).Generate();
  SubPortoOptions sub_options;
  sub_options.variants_per_trajectory = 4;
  const TrajectoryDataset sub = MakeSubPorto(base, sub_options);
  EXPECT_EQ(sub.size(), base.size() * 5);
}

TEST(SubPortoTest, VariantsAreSimilarButNotIdentical) {
  GeneratorOptions options;
  options.num_trajectories = 3;
  const TrajectoryDataset base = PortoLikeGenerator(options).Generate();
  SubPortoOptions sub_options;
  sub_options.variants_per_trajectory = 1;
  sub_options.noise_stddev_degrees = 1e-4;
  const TrajectoryDataset sub = MakeSubPorto(base, sub_options);
  // Layout: original, variant, original, variant, ...
  for (size_t i = 0; i < base.size(); ++i) {
    const Trajectory& original = sub[i * 2];
    const Trajectory& variant = sub[i * 2 + 1];
    ASSERT_EQ(original.size(), variant.size());
    EXPECT_EQ(original.start_tick, variant.start_tick);
    double max_dev = 0.0;
    double total_dev = 0.0;
    for (size_t j = 0; j < original.size(); ++j) {
      const double d = original.points[j].DistanceTo(variant.points[j]);
      max_dev = std::max(max_dev, d);
      total_dev += d;
    }
    EXPECT_GT(total_dev, 0.0);       // noise was added
    EXPECT_LT(max_dev, 5e-3);        // but trajectories stay similar
  }
}

TEST(CsvTest, RoundTrip) {
  GeneratorOptions options;
  options.num_trajectories = 6;
  options.horizon = 40;
  options.min_length = 10;
  options.max_length = 30;
  const TrajectoryDataset ds = PortoLikeGenerator(options).Generate();
  const std::string path = ::testing::TempDir() + "/ppq_csv_test.csv";
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_EQ((*loaded)[i].size(), ds[i].size());
    EXPECT_EQ((*loaded)[i].start_tick, ds[i].start_tick);
    for (size_t j = 0; j < ds[i].size(); ++j) {
      EXPECT_NEAR((*loaded)[i].points[j].x, ds[i].points[j].x, 1e-9);
      EXPECT_NEAR((*loaded)[i].points[j].y, ds[i].points[j].y, 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFile) {
  EXPECT_FALSE(LoadCsv("/nonexistent/definitely/missing.csv").ok());
}

TEST(CsvTest, MalformedLineRejected) {
  const std::string path = ::testing::TempDir() + "/ppq_csv_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("traj_id,tick,x,y\n0,0,1.0,2.0\nnot-a-line\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, NonConsecutiveTicksRejected) {
  const std::string path = ::testing::TempDir() + "/ppq_csv_gap.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("traj_id,tick,x,y\n0,0,1.0,2.0\n0,2,1.0,2.0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, FullDeviceSaveReportsAnError) {
  // /dev/full accepts every buffered write and fails the flush: the
  // historical SaveCsv checked the stream BEFORE close, so this exact
  // shape reported OK over a zero-byte "file".
  {
    std::FILE* probe = std::fopen("/dev/full", "w");
    if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
    std::fclose(probe);
  }
  GeneratorOptions options;
  options.num_trajectories = 4;
  options.horizon = 20;
  options.min_length = 5;
  options.max_length = 10;
  const TrajectoryDataset ds = PortoLikeGenerator(options).Generate();
  EXPECT_FALSE(SaveCsv(ds, "/dev/full").ok());
}

TEST(CsvTest, ReadErrorIsNotSilentEof) {
  // Reading a directory opens but every getline fails with badbit on
  // Linux: LoadCsv used to treat that as a clean EOF and return an
  // EMPTY dataset. It must be an error.
  const auto loaded = LoadCsv(::testing::TempDir());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace ppq::datagen
