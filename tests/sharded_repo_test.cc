#include "repo/sharded_repository.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/serial.h"
#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "repo/repository_snapshot.h"
#include "repo/shard_map.h"
#include "tests/test_util.h"

/// \file sharded_repo_test.cc
/// Writer/persistence side of the sharded repository: the shard map's
/// routing is pinned (it is an on-disk contract), a 1-shard repository is
/// bit-for-bit the unsharded pipeline — including its saved container —
/// SaveAll/OpenRepository round-trips multi-shard repositories (empty
/// shards included, serial and parallel), and every corrupted-manifest
/// shape (truncation at each byte, every single-bit flip, missing shard
/// file, shard-count mismatch, unknown hash kind, future version, path
/// escape) yields a clean Status error.

namespace ppq::repo {
namespace {

using test::ReadFileBytes;
using test::WriteFileBytes;

TrajectoryDataset SmallDataset(uint64_t seed = 77, int trajectories = 40) {
  return test::MakePortoDataset({trajectories, 50, 15, 50, seed});
}

ShardedRepository::CompressorFactory PpqAFactory() {
  return [](uint32_t /*shard*/) {
    return std::make_unique<core::PpqTrajectory>(core::MakePpqA());
  };
}

/// Unique scratch directory per test instance (parallel-ctest safe).
std::string TempDir(const char* name) {
  const std::string dir = test::TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

// -------------------------------------------------------------------------
// Shard map
// -------------------------------------------------------------------------

TEST(ShardMapTest, RoutingIsPinnedAcrossPlatformsAndRuns) {
  // These values are the persisted routing contract: a repository saved
  // with them must route identically when reopened anywhere. Changing the
  // hash is a format break and needs a new ShardHashKind value.
  const ShardMap four{4};
  EXPECT_EQ(four.ShardOf(0), 3u);
  EXPECT_EQ(four.ShardOf(1), 1u);
  EXPECT_EQ(four.ShardOf(2), 2u);
  EXPECT_EQ(four.ShardOf(6), 0u);
  const ShardMap two{2};
  EXPECT_EQ(two.ShardOf(0), 1u);
  EXPECT_EQ(two.ShardOf(2), 0u);

  for (const uint32_t n : {1u, 2u, 3u, 4u, 7u, 64u}) {
    const ShardMap map{n};
    for (TrajId id = 0; id < 500; ++id) {
      const uint32_t shard = map.ShardOf(id);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, map.ShardOf(id));  // deterministic
    }
  }
}

TEST(ShardMapTest, SpreadsSequentialIdsAcrossAllShards) {
  // Dataset ids are dense 0..N-1; the mixer must not leave a shard cold.
  for (const uint32_t n : {2u, 4u, 8u}) {
    const ShardMap map{n};
    std::set<uint32_t> hit;
    for (TrajId id = 0; id < 256; ++id) hit.insert(map.ShardOf(id));
    EXPECT_EQ(hit.size(), n) << n << " shards";
  }
}

// -------------------------------------------------------------------------
// Ingest / seal
// -------------------------------------------------------------------------

TEST(ShardedRepositoryTest, OneShardIsByteIdenticalToUnsharded) {
  const TrajectoryDataset data = SmallDataset();

  ShardedRepository::Options options;
  options.num_shards = 1;
  options.num_threads = 2;
  ShardedRepository repo(PpqAFactory(), options);
  repo.Compress(data);
  const RepositorySnapshotPtr sealed = repo.SealAll();

  core::PpqOptions ppq = core::MakePpqA();
  core::PpqTrajectory unsharded(ppq);
  unsharded.Compress(data);
  const core::SnapshotPtr reference = unsharded.Seal();

  ASSERT_EQ(sealed->num_shards(), 1u);
  EXPECT_EQ(sealed->NumTrajectories(), reference->NumTrajectories());
  EXPECT_EQ(sealed->SummaryBytes(), reference->SummaryBytes());

  // The strongest equality money can buy: the saved containers are
  // byte-for-byte the same file.
  const std::string shard_path = test::TempPath("one_shard.snapshot");
  const std::string reference_path = test::TempPath("unsharded.snapshot");
  ASSERT_TRUE(sealed->shard(0)->Save(shard_path).ok());
  ASSERT_TRUE(reference->Save(reference_path).ok());
  EXPECT_EQ(ReadFileBytes(shard_path), ReadFileBytes(reference_path));
  std::remove(shard_path.c_str());
  std::remove(reference_path.c_str());
}

TEST(ShardedRepositoryTest, ShardsPartitionTheDataset) {
  const TrajectoryDataset data = SmallDataset(31);
  ShardedRepository::Options options;
  options.num_shards = 4;
  options.num_threads = 4;
  ShardedRepository repo(PpqAFactory(), options);
  repo.Compress(data);
  const RepositorySnapshotPtr sealed = repo.SealAll();

  // Every trajectory landed in exactly its hash shard, and nowhere else.
  size_t total = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    total += sealed->shard(shard)->NumTrajectories();
  }
  EXPECT_EQ(total, data.size());

  // Per-shard content answers for its own ids: a reconstruction probe of
  // each trajectory's first tick succeeds on the owning shard only.
  core::DecodeMemo memo;
  for (const Trajectory& traj : data.trajectories()) {
    const uint32_t owner = sealed->shard_map().ShardOf(traj.id);
    for (uint32_t shard = 0; shard < 4; ++shard) {
      memo.Clear();
      const auto recon =
          sealed->shard(shard)->Reconstruct(traj.id, traj.start_tick, &memo);
      EXPECT_EQ(recon.ok(), shard == owner)
          << "trajectory " << traj.id << " shard " << shard;
    }
  }
}

TEST(ShardedRepositoryTest, MidStreamSealIsImmutable) {
  const TrajectoryDataset data = SmallDataset(41);
  ShardedRepository::Options options;
  options.num_shards = 2;
  options.num_threads = 2;
  ShardedRepository repo(PpqAFactory(), options);

  const Tick mid = (data.MinTick() + data.MaxTick()) / 2;
  for (Tick t = data.MinTick(); t < mid; ++t) {
    const TimeSlice slice = data.SliceAt(t);
    if (!slice.empty()) repo.ObserveSlice(slice);
  }
  const RepositorySnapshotPtr early = repo.SealAll();
  const size_t early_total = early->NumTrajectories();

  for (Tick t = mid; t < data.MaxTick(); ++t) {
    const TimeSlice slice = data.SliceAt(t);
    if (!slice.empty()) repo.ObserveSlice(slice);
  }
  repo.Finish();
  const RepositorySnapshotPtr late = repo.SealAll();

  // The early seal kept its state; the late one saw the whole stream.
  EXPECT_EQ(early->NumTrajectories(), early_total);
  EXPECT_GE(late->NumTrajectories(), early_total);
  EXPECT_EQ(late->NumTrajectories(), data.size());
}

TEST(ShardedRepositoryTest, RejectsInvalidConstruction) {
  ShardedRepository::Options zero;
  zero.num_shards = 0;
  EXPECT_THROW(ShardedRepository(PpqAFactory(), zero), std::invalid_argument);

  // The range check must run BEFORE any member is sized by the count: a
  // hostile value throws the contractual invalid_argument, not bad_alloc
  // from a giant allocation (regression).
  ShardedRepository::Options huge;
  huge.num_shards = kMaxShards + 1;
  EXPECT_THROW(ShardedRepository(PpqAFactory(), huge), std::invalid_argument);

  ShardedRepository::Options two;
  two.num_shards = 2;
  EXPECT_THROW(ShardedRepository(
                   [](uint32_t) { return std::unique_ptr<core::Compressor>(); },
                   two),
               std::invalid_argument);
}

// -------------------------------------------------------------------------
// SaveAll / OpenRepository round trip
// -------------------------------------------------------------------------

/// Compress \p data into \p num_shards shards and SaveAll into \p dir.
RepositorySnapshotPtr SaveRepository(const TrajectoryDataset& data,
                                     uint32_t num_shards,
                                     const std::string& dir) {
  ShardedRepository::Options options;
  options.num_shards = num_shards;
  options.num_threads = 2;
  ShardedRepository repo(PpqAFactory(), options);
  repo.Compress(data);
  const RepositorySnapshotPtr sealed = repo.SealAll();
  EXPECT_TRUE(repo.SaveAll(dir).ok());
  return sealed;
}

/// The opened repository must answer exactly like the sealed one,
/// shard by shard (serial single-query probes; the full service-level
/// parity lives in sharded_query_service_test.cc).
void ExpectShardsServeIdentically(const RepositorySnapshotPtr& opened,
                                  const RepositorySnapshotPtr& sealed,
                                  const TrajectoryDataset& data) {
  ASSERT_EQ(opened->num_shards(), sealed->num_shards());
  EXPECT_EQ(opened->shard_map(), sealed->shard_map());
  Rng rng(17);
  const auto queries = core::SampleQueries(data, 25, &rng);
  const double cell = core::PpqOptions{}.tpi.pi.cell_size;
  for (uint32_t shard = 0; shard < sealed->num_shards(); ++shard) {
    const core::QueryEngine want(sealed->shard(shard), &data, cell);
    const core::QueryEngine got(opened->shard(shard), &data, cell);
    for (const core::QuerySpec& q : queries) {
      EXPECT_EQ(got.Strq(q, core::StrqMode::kExact),
                want.Strq(q, core::StrqMode::kExact))
          << "shard " << shard;
      EXPECT_EQ(got.NearestTrajectories(q, 4), want.NearestTrajectories(q, 4))
          << "shard " << shard;
    }
  }
}

TEST(RepositoryPersistenceTest, MultiShardRoundTrip) {
  const TrajectoryDataset data = SmallDataset(51);
  const std::string dir = TempDir("repo_roundtrip");
  const RepositorySnapshotPtr sealed = SaveRepository(data, 3, dir);

  // Serial open and parallel open must agree.
  auto opened = OpenRepository(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectShardsServeIdentically(*opened, sealed, data);

  ThreadPool pool(4);
  auto parallel = OpenRepository(dir, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectShardsServeIdentically(*parallel, sealed, data);

  EXPECT_EQ((*opened)->NumTrajectories(), data.size());
  std::filesystem::remove_all(dir);
}

TEST(RepositoryPersistenceTest, EmptyShardsRoundTrip) {
  // 3 trajectories over 8 shards: most shards never see a point, seal
  // empty, persist empty, and reopen empty.
  const TrajectoryDataset data = SmallDataset(61, /*trajectories=*/3);
  const std::string dir = TempDir("repo_empty_shards");
  const RepositorySnapshotPtr sealed = SaveRepository(data, 8, dir);

  size_t empty = 0;
  for (uint32_t shard = 0; shard < 8; ++shard) {
    if (sealed->shard(shard)->NumTrajectories() == 0) ++empty;
  }
  ASSERT_GE(empty, 5u);  // ids {0,1,2} occupy at most 3 of 8 shards

  auto opened = OpenRepository(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->num_shards(), 8u);
  EXPECT_EQ((*opened)->NumTrajectories(), data.size());
  for (uint32_t shard = 0; shard < 8; ++shard) {
    EXPECT_EQ((*opened)->shard(shard)->NumTrajectories(),
              sealed->shard(shard)->NumTrajectories())
        << "shard " << shard;
  }
  std::filesystem::remove_all(dir);
}

TEST(RepositoryPersistenceTest, FailedResaveNeverLeavesMixedSealOpenable) {
  // Re-saving into an existing repository directory must invalidate the
  // old manifest BEFORE rewriting shard files: a save that dies midway
  // must leave the directory unopenable, never a stale manifest stitching
  // shard containers from two different seals into a "valid" repository
  // (regression).
  const TrajectoryDataset data = SmallDataset(91, /*trajectories=*/10);
  const std::string dir = TempDir("repo_resave_crash");
  const RepositorySnapshotPtr sealed = SaveRepository(data, 2, dir);
  ASSERT_TRUE(OpenRepository(dir).ok());

  // Make one shard's rewrite fail: a directory squatting on its path.
  ASSERT_TRUE(std::filesystem::remove(dir + "/shard-0001.snapshot"));
  ASSERT_TRUE(std::filesystem::create_directory(dir + "/shard-0001.snapshot"));
  const Status resave = sealed->Save(dir);
  EXPECT_FALSE(resave.ok());

  // The old manifest must be gone, so the half-rewritten directory can
  // only fail cleanly — not open as a mix of old and new shards.
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + kManifestFileName));
  EXPECT_FALSE(OpenRepository(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(RepositoryPersistenceTest, ResaveOverExistingDirectoryRoundTrips) {
  // The happy path of the same invariant: a re-save over an existing
  // repository fully replaces it and reopens.
  const TrajectoryDataset data = SmallDataset(92);
  const std::string dir = TempDir("repo_resave_ok");
  SaveRepository(data, 2, dir);
  const RepositorySnapshotPtr second = SaveRepository(data, 2, dir);
  auto opened = OpenRepository(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectShardsServeIdentically(*opened, second, data);
  std::filesystem::remove_all(dir);
}

TEST(RepositoryPersistenceTest, SaveIsDeterministic) {
  const TrajectoryDataset data = SmallDataset(71);
  const std::string dir_a = TempDir("repo_det_a");
  const std::string dir_b = TempDir("repo_det_b");
  SaveRepository(data, 2, dir_a);
  SaveRepository(data, 2, dir_b);
  EXPECT_EQ(ReadFileBytes(dir_a + "/" + kManifestFileName),
            ReadFileBytes(dir_b + "/" + kManifestFileName));
  EXPECT_EQ(ReadFileBytes(dir_a + "/shard-0000.snapshot"),
            ReadFileBytes(dir_b + "/shard-0000.snapshot"));
  EXPECT_EQ(ReadFileBytes(dir_a + "/shard-0001.snapshot"),
            ReadFileBytes(dir_b + "/shard-0001.snapshot"));
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

// -------------------------------------------------------------------------
// Hostile manifests
// -------------------------------------------------------------------------

/// Manifest prelude offsets (layout in repository_snapshot.cc): magic @0,
/// u32 version @8, u64 payload_len @12, u32 payload_crc @20, payload @24
/// (u32 num_shards @24, u32 hash_kind @28, u64 file_count @32, names).
constexpr size_t kVersionOffset = 8;
constexpr size_t kCrcOffset = 20;
constexpr size_t kPayloadOffset = 24;
constexpr size_t kNumShardsOffset = 24;
constexpr size_t kHashKindOffset = 28;

void PatchU32(std::vector<uint8_t>* bytes, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] = uint8_t(value >> (8 * i));
  }
}

/// Recompute the payload CRC after an intentional payload edit, so the
/// edit reaches the semantic validator instead of the checksum gate.
void FixPayloadCrc(std::vector<uint8_t>* bytes) {
  PatchU32(bytes, kCrcOffset,
           Crc32(bytes->data() + kPayloadOffset,
                 bytes->size() - kPayloadOffset));
}

class HostileManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("repo_hostile");
    SaveRepository(SmallDataset(81, /*trajectories=*/10), 2, dir_);
    manifest_path_ = dir_ + "/" + kManifestFileName;
    pristine_ = ReadFileBytes(manifest_path_);
    ASSERT_GE(pristine_.size(), kPayloadOffset + 16);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Plant \p bytes as the manifest and expect a clean failure whose
  /// message mentions \p expect_substring (empty = any error).
  void ExpectOpenFails(const std::vector<uint8_t>& bytes,
                       const std::string& expect_substring,
                       const std::string& label) {
    WriteFileBytes(manifest_path_, bytes);
    const auto opened = OpenRepository(dir_);
    ASSERT_FALSE(opened.ok()) << label;
    if (!expect_substring.empty()) {
      EXPECT_NE(opened.status().ToString().find(expect_substring),
                std::string::npos)
          << label << ": got " << opened.status().ToString();
    }
  }

  std::string dir_;
  std::string manifest_path_;
  std::vector<uint8_t> pristine_;
};

TEST_F(HostileManifestTest, TruncationAtEveryByteFailsCleanly) {
  for (size_t len = 0; len < pristine_.size(); ++len) {
    ExpectOpenFails(
        std::vector<uint8_t>(pristine_.begin(),
                             pristine_.begin() + static_cast<long>(len)),
        "", "truncated to " + std::to_string(len));
  }
}

TEST_F(HostileManifestTest, EverySingleBitFlipFailsCleanly) {
  // The prelude is structurally validated and the payload is CRC'd: no
  // single-bit flip anywhere in the file may parse.
  for (size_t byte = 0; byte < pristine_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = pristine_;
      flipped[byte] = uint8_t(flipped[byte] ^ (1u << bit));
      ExpectOpenFails(flipped, "",
                      "bit " + std::to_string(bit) + " of byte " +
                          std::to_string(byte));
    }
  }
}

TEST_F(HostileManifestTest, AppendedGarbageFailsCleanly) {
  std::vector<uint8_t> padded = pristine_;
  padded.insert(padded.end(), {0xde, 0xad, 0xbe, 0xef});
  ExpectOpenFails(padded, "size mismatch", "appended garbage");
}

TEST_F(HostileManifestTest, ShardCountMismatchFailsCleanly) {
  // 3 shards claimed, 2 shard files listed — a forged disagreement the
  // checksum cannot catch (the CRC is recomputed to match).
  std::vector<uint8_t> forged = pristine_;
  PatchU32(&forged, kNumShardsOffset, 3);
  FixPayloadCrc(&forged);
  ExpectOpenFails(forged, "shard-count mismatch", "count 3 vs 2 files");
}

TEST_F(HostileManifestTest, UnknownHashKindFailsCleanly) {
  std::vector<uint8_t> forged = pristine_;
  PatchU32(&forged, kHashKindOffset, 999);
  FixPayloadCrc(&forged);
  ExpectOpenFails(forged, "hash kind", "unknown hash kind");
}

TEST_F(HostileManifestTest, FutureVersionFailsCleanly) {
  std::vector<uint8_t> forged = pristine_;
  PatchU32(&forged, kVersionOffset, kManifestVersion + 1);
  ExpectOpenFails(forged, "unsupported version", "future version");
}

TEST_F(HostileManifestTest, BadMagicFailsCleanly) {
  std::vector<uint8_t> forged = pristine_;
  forged[0] = 'X';
  ExpectOpenFails(forged, "bad magic", "bad magic");
}

TEST_F(HostileManifestTest, PathEscapingShardNameFailsCleanly) {
  // A forged manifest must not be able to make OpenRepository read
  // outside the repository directory.
  ByteWriter payload;
  payload.WriteU32(2);
  payload.WriteU32(1);  // kSplitMix64
  payload.WriteU64(2);
  payload.WriteString("shard-0000.snapshot");
  payload.WriteString("../../../etc/hostname");
  ByteWriter out;
  const char magic[8] = {'P', 'P', 'Q', 'M', 'A', 'N', 'I', 'F'};
  out.WriteBytes(magic, sizeof(magic));
  out.WriteU32(kManifestVersion);
  out.WriteU64(payload.size());
  out.WriteU32(Crc32(payload.buffer().data(), payload.size()));
  out.WriteBytes(payload.buffer().data(), payload.size());
  ExpectOpenFails(out.buffer(), "unsafe shard file name", "path escape");
}

TEST_F(HostileManifestTest, MissingShardFileFailsCleanly) {
  ASSERT_TRUE(std::filesystem::remove(dir_ + "/shard-0001.snapshot"));
  const auto opened = OpenRepository(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().ToString().find("cannot open"),
            std::string::npos)
      << opened.status().ToString();
}

TEST_F(HostileManifestTest, CorruptShardFileFailsCleanly) {
  // The shard container has its own CRC armor; the repository open must
  // surface its clean error, not mask or crash.
  const std::string shard_path = dir_ + "/shard-0000.snapshot";
  std::vector<uint8_t> shard_bytes = ReadFileBytes(shard_path);
  ASSERT_GT(shard_bytes.size(), 64u);
  shard_bytes.resize(shard_bytes.size() / 2);
  WriteFileBytes(shard_path, shard_bytes);
  const auto opened = OpenRepository(dir_);
  ASSERT_FALSE(opened.ok());

  // Parallel open reports the same deterministic error.
  ThreadPool pool(4);
  const auto parallel = OpenRepository(dir_, &pool);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().ToString(), opened.status().ToString());
}

TEST_F(HostileManifestTest, MissingManifestFailsCleanly) {
  ASSERT_TRUE(std::filesystem::remove(manifest_path_));
  const auto opened = OpenRepository(dir_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ppq::repo
