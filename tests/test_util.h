#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "core/metrics.h"
#include "core/options.h"
#include "core/ppq_trajectory.h"
#include "core/query_engine.h"
#include "core/query_types.h"
#include "datagen/generator.h"

/// \file test_util.h
/// Shared fixture library for the test suites: deterministic dataset
/// construction, query/window sampling, and the compress-then-query
/// boilerplate that was previously duplicated across the query and
/// integration suites. Everything is parameterised by explicit seeds so
/// each suite keeps the exact workloads it had before the extraction.

namespace ppq::test {

/// Scratch-file path inside gtest's temp directory, made unique per test
/// instance: ctest runs parameterized instances of one suite as separate
/// parallel processes, so a bare shared filename (the historical pattern)
/// races — two instances overwrite each other's scratch file mid-read.
inline std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  size_t tag = 0;
  if (info != nullptr) {
    tag = std::hash<std::string>{}(std::string(info->test_suite_name()) +
                                   "." + info->name());
  }
  return ::testing::TempDir() + "/" + std::to_string(tag) + "_" + name;
}

/// Whole-file read for byte-level format assertions.
inline std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// Whole-file overwrite used to plant (possibly corrupted) images.
inline void WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(static_cast<bool>(out)) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// \brief Shape of a synthetic dataset. Defaults match the query suites'
/// historical "small Porto" workload.
struct DatasetSpec {
  int num_trajectories = 40;
  Tick horizon = 50;
  int min_length = 15;
  int max_length = 50;
  uint64_t seed = 77;
};

/// Porto-like workload (dense urban trips) for \p spec.
inline TrajectoryDataset MakePortoDataset(const DatasetSpec& spec) {
  datagen::GeneratorOptions options;
  options.num_trajectories = spec.num_trajectories;
  options.horizon = spec.horizon;
  options.min_length = spec.min_length;
  options.max_length = spec.max_length;
  options.seed = spec.seed;
  return datagen::PortoLikeGenerator(options).Generate();
}

/// GeoLife-like workload (long wide-area trajectories) for \p spec.
inline TrajectoryDataset MakeGeoLifeDataset(const DatasetSpec& spec) {
  datagen::GeneratorOptions options;
  options.num_trajectories = spec.num_trajectories;
  options.horizon = spec.horizon;
  options.min_length = spec.min_length;
  options.max_length = spec.max_length;
  options.seed = spec.seed;
  return datagen::GeoLifeLikeGenerator(options).Generate();
}

/// Random query windows centred on sampled query points, with half-width
/// drawn from [0.0005, 0.01) — the executor suite's historical workload.
inline std::vector<core::WindowSpec> SampleWindows(
    const TrajectoryDataset& data, size_t count, Rng* rng) {
  std::vector<core::WindowSpec> windows;
  const auto queries = core::SampleQueries(data, count, rng);
  for (const core::QuerySpec& q : queries) {
    const double half = rng->Uniform(0.0005, 0.01);
    windows.push_back(
        {core::Window{q.position.x - half, q.position.y - half,
                      q.position.x + half, q.position.y + half},
         q.tick});
  }
  return windows;
}

/// Axis-aligned square window of half-width \p half around \p center.
inline core::Window WindowAround(const Point& center, double half) {
  return {center.x - half, center.y - half, center.x + half,
          center.y + half};
}

/// \brief Dataset + compressed method + single-query engine: the
/// compress-then-query boilerplate shared by the query suites.
struct MethodFixture {
  TrajectoryDataset dataset;
  std::unique_ptr<core::PpqTrajectory> method;
  std::unique_ptr<core::QueryEngine> engine;
};

/// Compress \p dataset with explicit \p options and bind a query engine.
inline MethodFixture MakeFixtureWithOptions(TrajectoryDataset dataset,
                                            const core::PpqOptions& options) {
  MethodFixture f;
  f.dataset = std::move(dataset);
  f.method = std::make_unique<core::PpqTrajectory>(options);
  f.method->Compress(f.dataset);
  f.engine = std::make_unique<core::QueryEngine>(f.method.get(), &f.dataset,
                                                 options.tpi.pi.cell_size);
  return f;
}

/// Compress \p dataset with the named MakeMethod family member (applied
/// over \p base, like the benches do) and bind a query engine.
inline MethodFixture MakeMethodFixture(const std::string& method_name,
                                       TrajectoryDataset dataset,
                                       core::PpqOptions base = {}) {
  MethodFixture f;
  f.dataset = std::move(dataset);
  f.method = core::MakeMethod(method_name, base);
  f.method->Compress(f.dataset);
  f.engine = std::make_unique<core::QueryEngine>(f.method.get(), &f.dataset,
                                                 base.tpi.pi.cell_size);
  return f;
}

}  // namespace ppq::test
