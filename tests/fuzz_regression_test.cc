#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.h"

/// \file fuzz_regression_test.cc
/// Replays the checked-in fuzz corpus through the fuzz target functions
/// inside the NORMAL test suite: every seed and every crash reproducer
/// in fuzz/corpus/ runs on every compiler, every CI leg (including ASan
/// and TSan), without libFuzzer. A crash found by the fuzz-smoke CI job
/// gets minimised, checked into fuzz/corpus/crashes/, and is then pinned
/// here forever.
///
/// The seed replays double as end-to-end parser smoke tests: the golden
/// snapshot containers, a real saved MANIFEST, and real WAL images all
/// must come back out of their parsers without tripping a sanitizer.

namespace ppq::fuzz {
namespace {

namespace fs = std::filesystem;

using FuzzTarget = int (*)(const uint8_t*, size_t);

fs::path CorpusDir() { return fs::path(PPQ_FUZZ_CORPUS_DIR); }

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read corpus file " << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

/// Run every regular file in \p dir through \p target; returns the count.
size_t ReplayDir(const fs::path& dir, FuzzTarget target) {
  size_t ran = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::vector<uint8_t> bytes = ReadFile(entry.path());
    EXPECT_EQ(target(bytes.data(), bytes.size()), 0)
        << "corpus input " << entry.path();
    ++ran;
  }
  return ran;
}

TEST(FuzzRegressionTest, SnapshotSeedsReplayClean) {
  EXPECT_GT(ReplayDir(CorpusDir() / "snapshot", &FuzzSnapshot), 0u)
      << "snapshot seed corpus is empty — seeds were moved or deleted";
}

TEST(FuzzRegressionTest, ManifestSeedsReplayClean) {
  EXPECT_GT(ReplayDir(CorpusDir() / "manifest", &FuzzManifest), 0u)
      << "manifest seed corpus is empty — seeds were moved or deleted";
}

TEST(FuzzRegressionTest, WalSeedsReplayClean) {
  EXPECT_GT(ReplayDir(CorpusDir() / "wal", &FuzzWal), 0u)
      << "wal seed corpus is empty — seeds were moved or deleted";
}

TEST(FuzzRegressionTest, CrashReproducersStayFixed) {
  const fs::path crashes = CorpusDir() / "crashes";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(crashes, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("README", 0) == 0) continue;
    const std::vector<uint8_t> bytes = ReadFile(entry.path());
    // Route by filename prefix (see crashes/README.md); unknown prefixes
    // replay through every target — a reproducer must never crash ANY of
    // them, so over-replaying is safe and under-replaying is not.
    const bool is_snapshot = name.rfind("snapshot-", 0) == 0;
    const bool is_manifest = name.rfind("manifest-", 0) == 0;
    const bool is_wal = name.rfind("wal-", 0) == 0;
    const bool unrouted = !is_snapshot && !is_manifest && !is_wal;
    if (is_snapshot || unrouted) {
      EXPECT_EQ(FuzzSnapshot(bytes.data(), bytes.size()), 0) << name;
    }
    if (is_manifest || unrouted) {
      EXPECT_EQ(FuzzManifest(bytes.data(), bytes.size()), 0) << name;
    }
    if (is_wal || unrouted) {
      EXPECT_EQ(FuzzWal(bytes.data(), bytes.size()), 0) << name;
    }
  }
}

/// Mutation smoke: deterministic single-byte corruptions of every seed
/// must also come back as a clean Status (a weak, fast stand-in for the
/// coverage-guided CI fuzz job that runs on every compiler).
TEST(FuzzRegressionTest, SingleByteCorruptionsOfSeedsReplayClean) {
  const struct {
    const char* dir;
    FuzzTarget target;
  } kTargets[] = {{"snapshot", &FuzzSnapshot},
                  {"manifest", &FuzzManifest},
                  {"wal", &FuzzWal}};
  for (const auto& [dir, target] : kTargets) {
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(CorpusDir() / dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::vector<uint8_t> bytes = ReadFile(entry.path());
      if (bytes.empty()) continue;
      // Flip a spread of byte positions (every offset would be O(n^2)
      // over the big snapshot seeds).
      for (size_t step = 0; step < 64; ++step) {
        const size_t pos = (bytes.size() - 1) * step / 63;
        const uint8_t saved = bytes[pos];
        bytes[pos] ^= 0xA5;
        EXPECT_EQ(target(bytes.data(), bytes.size()), 0)
            << entry.path() << " flipped at " << pos;
        bytes[pos] = saved;
      }
    }
  }
}

}  // namespace
}  // namespace ppq::fuzz
