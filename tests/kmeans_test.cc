#include <gtest/gtest.h>

#include <algorithm>

#include "quantizer/kmeans.h"

namespace ppq::quantizer {
namespace {

std::vector<double> TwoClusters(int per_cluster, Rng* rng) {
  std::vector<double> data;
  for (int i = 0; i < per_cluster; ++i) {
    data.push_back(rng->Normal(0.0, 0.05));
    data.push_back(rng->Normal(0.0, 0.05));
  }
  for (int i = 0; i < per_cluster; ++i) {
    data.push_back(rng->Normal(10.0, 0.05));
    data.push_back(rng->Normal(10.0, 0.05));
  }
  return data;
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  const auto result = RunKMeans({}, 0, 2, 3, {}, rng);
  EXPECT_EQ(result.k, 0);
  EXPECT_TRUE(result.assignments.empty());
}

TEST(KMeansTest, KClampedToN) {
  Rng rng(1);
  const std::vector<double> data{0.0, 0.0, 1.0, 1.0};
  const auto result = RunKMeans(data, 2, 2, 10, {}, rng);
  EXPECT_EQ(result.k, 2);
}

TEST(KMeansTest, SeparatesTwoObviousClusters) {
  Rng rng(7);
  const auto data = TwoClusters(50, &rng);
  const auto result = RunKMeans(data, 100, 2, 2, {}, rng);
  // All points of each half share an assignment, and the two halves
  // differ.
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(result.assignments[static_cast<size_t>(i)],
              result.assignments[0]);
    EXPECT_EQ(result.assignments[static_cast<size_t>(50 + i)],
              result.assignments[50]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[50]);
}

TEST(KMeansTest, AssignmentsAreNearest) {
  Rng rng(11);
  const auto data = TwoClusters(30, &rng);
  const auto result = RunKMeans(data, 60, 2, 4, {}, rng);
  for (int i = 0; i < 60; ++i) {
    const Point p{data[static_cast<size_t>(i) * 2],
                  data[static_cast<size_t>(i) * 2 + 1]};
    double best = std::numeric_limits<double>::infinity();
    int best_c = -1;
    for (int c = 0; c < result.k; ++c) {
      const double d = p.DistanceTo(result.CentroidPoint(c));
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    EXPECT_EQ(result.assignments[static_cast<size_t>(i)], best_c);
  }
}

TEST(KMeansTest, MaxRadiusIsConsistent) {
  Rng rng(13);
  const auto data = TwoClusters(30, &rng);
  const auto result = RunKMeans(data, 60, 2, 3, {}, rng);
  std::vector<double> radius(static_cast<size_t>(result.k), 0.0);
  for (int i = 0; i < 60; ++i) {
    const Point p{data[static_cast<size_t>(i) * 2],
                  data[static_cast<size_t>(i) * 2 + 1]};
    const int c = result.assignments[static_cast<size_t>(i)];
    radius[static_cast<size_t>(c)] =
        std::max(radius[static_cast<size_t>(c)],
                 p.DistanceTo(result.CentroidPoint(c)));
  }
  for (int c = 0; c < result.k; ++c) {
    EXPECT_NEAR(radius[static_cast<size_t>(c)],
                result.max_radius[static_cast<size_t>(c)], 1e-12);
  }
}

TEST(KMeansTest, HigherDimensionalRows) {
  Rng rng(17);
  // Two clusters in 5-D.
  std::vector<double> data;
  for (int i = 0; i < 20; ++i) {
    for (int d = 0; d < 5; ++d) data.push_back(rng.Normal(0.0, 0.1));
  }
  for (int i = 0; i < 20; ++i) {
    for (int d = 0; d < 5; ++d) data.push_back(rng.Normal(5.0, 0.1));
  }
  const auto result = RunKMeans(data, 40, 5, 2, {}, rng);
  EXPECT_NE(result.assignments[0], result.assignments[20]);
}

TEST(FlattenPointsTest, Layout) {
  const auto flat = FlattenPoints({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[3], 4.0);
}

// ---------------------------------------------------------------------------
// ThresholdCluster: the Eq. 7/8 loop
// ---------------------------------------------------------------------------

/// Property: after ThresholdCluster, every member is within epsilon of its
/// centroid, for any epsilon.
class ThresholdClusterBound
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(ThresholdClusterBound, EveryMemberWithinEpsilon) {
  const auto [epsilon, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> data;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    data.push_back(rng.Uniform(0.0, 1.0));
    data.push_back(rng.Uniform(0.0, 1.0));
  }
  ThresholdClusterOptions options;
  const auto result = ThresholdCluster(data, n, 2, epsilon, options, rng);
  ASSERT_GT(result.kmeans.k, 0);
  for (int i = 0; i < n; ++i) {
    const Point p{data[static_cast<size_t>(i) * 2],
                  data[static_cast<size_t>(i) * 2 + 1]};
    const int c = result.kmeans.assignments[static_cast<size_t>(i)];
    EXPECT_LE(p.DistanceTo(result.kmeans.CentroidPoint(c)), epsilon + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonSweep, ThresholdClusterBound,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.5, 1.5),
                       ::testing::Values(3u, 9u)));

TEST(ThresholdClusterTest, TightEpsilonGrowsMoreClusters) {
  Rng rng_a(5);
  Rng rng_b(5);
  std::vector<double> data;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    data.push_back(rng_a.Uniform(0.0, 1.0));
    data.push_back(rng_a.Uniform(0.0, 1.0));
  }
  ThresholdClusterOptions options;
  options.step = 2;
  Rng r1(42);
  Rng r2(42);
  const auto loose = ThresholdCluster(data, n, 2, 0.5, options, r1);
  const auto tight = ThresholdCluster(data, n, 2, 0.05, options, r2);
  EXPECT_LT(loose.kmeans.k, tight.kmeans.k);
  EXPECT_LE(loose.rounds, tight.rounds);
}

TEST(ThresholdClusterTest, SinglePointSingleCluster) {
  Rng rng(1);
  const auto result = ThresholdCluster({0.5, 0.5}, 1, 2, 1e-9, {}, rng);
  EXPECT_EQ(result.kmeans.k, 1);
  EXPECT_EQ(result.rounds, 1);
}

TEST(ThresholdClusterTest, DuplicatePointsNeverExceedN) {
  Rng rng(2);
  std::vector<double> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back(1.0);
    data.push_back(2.0);
  }
  const auto result = ThresholdCluster(data, 10, 2, 1e-12, {}, rng);
  EXPECT_LE(result.kmeans.k, 10);
  // Identical points fit a single centroid exactly.
  EXPECT_EQ(result.kmeans.k, 1);
}

}  // namespace
}  // namespace ppq::quantizer
