#include <gtest/gtest.h>

#include "common/geo.h"
#include "core/forecast.h"
#include "core/ppq_trajectory.h"
#include "datagen/generator.h"

namespace ppq::core {
namespace {

PpqTrajectory CompressLinearFleet(TrajectoryDataset* out_dataset) {
  // Constant-velocity trajectories: a fitted AR model should extrapolate
  // them almost perfectly.
  TrajectoryDataset dataset;
  for (int i = 0; i < 12; ++i) {
    Trajectory traj;
    traj.start_tick = 0;
    const double vx = 1e-4 * (i + 1);
    const double vy = 5e-5 * (i + 1);
    for (int t = 0; t < 40; ++t) {
      traj.points.push_back({i * 0.01 + vx * t, i * 0.01 + vy * t});
    }
    dataset.Add(traj);
  }
  *out_dataset = dataset;
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(dataset);
  return method;
}

TEST(ForecastTest, ExtrapolatesLinearMotion) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  const auto forecast = forecaster.Predict(3, 30, 5);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->positions.size(), 5u);
  // Ground truth continuation of trajectory 3.
  const double vx = 1e-4 * 4;
  const double vy = 5e-5 * 4;
  for (int s = 0; s < 5; ++s) {
    const Point truth{3 * 0.01 + vx * (31 + s), 3 * 0.01 + vy * (31 + s)};
    EXPECT_LT(DegreeDistanceMeters(forecast->positions[static_cast<size_t>(s)],
                                   truth),
              200.0)
        << "step " << s;
  }
}

TEST(ForecastTest, PredictBeyondEndAnchorsAtLastSample) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  const auto forecast = forecaster.PredictBeyondEnd(0, 3);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->positions.size(), 3u);
}

TEST(ForecastTest, UnknownTrajectory) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  EXPECT_EQ(forecaster.Predict(99, 0, 3).status().code(),
            StatusCode::kNotFound);
}

TEST(ForecastTest, AnchorOutsideTrajectory) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  EXPECT_EQ(forecaster.Predict(0, 1000, 3).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ForecastTest, NegativeStepsRejected) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  EXPECT_FALSE(forecaster.Predict(0, 10, -1).ok());
}

TEST(ForecastTest, ZeroStepsYieldEmptyForecast) {
  TrajectoryDataset dataset;
  const PpqTrajectory method = CompressLinearFleet(&dataset);
  Forecaster forecaster(&method.summary());
  const auto forecast = forecaster.Predict(0, 10, 0);
  ASSERT_TRUE(forecast.ok());
  EXPECT_TRUE(forecast->positions.empty());
}

TEST(ForecastTest, WarmupOnlyTrajectoryFallsBackToPersistence) {
  // Trajectories shorter than the prediction order never get a fitted
  // partition; the forecast must still work via persistence.
  TrajectoryDataset dataset;
  Trajectory tiny;
  tiny.start_tick = 0;
  tiny.points = {{1.0, 2.0}, {1.0, 2.0}};
  dataset.Add(tiny);
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(dataset);
  Forecaster forecaster(&method.summary());
  const auto forecast = forecaster.PredictBeyondEnd(0, 3);
  ASSERT_TRUE(forecast.ok());
  for (const Point& p : forecast->positions) {
    EXPECT_NEAR(p.x, 1.0, 0.01);
    EXPECT_NEAR(p.y, 2.0, 0.01);
  }
}

TEST(ForecastTest, RealisticWorkloadShortHorizonBeatsLongHorizon) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories = 30;
  gen.horizon = 80;
  gen.min_length = 60;
  gen.max_length = 80;
  gen.seed = 5;
  const TrajectoryDataset dataset =
      datagen::PortoLikeGenerator(gen).Generate();
  PpqOptions options = MakePpqS();
  options.enable_index = false;
  PpqTrajectory method(options);
  method.Compress(dataset);
  Forecaster forecaster(&method.summary());

  double err_short = 0.0;
  double err_long = 0.0;
  int counted = 0;
  for (const Trajectory& traj : dataset.trajectories()) {
    const Tick anchor = traj.start_tick + 30;
    if (!traj.ActiveAt(anchor + 20)) continue;
    const auto forecast = forecaster.Predict(traj.id, anchor, 20);
    if (!forecast.ok()) continue;
    err_short +=
        DegreeDistanceMeters(forecast->positions[2], traj.At(anchor + 3));
    err_long +=
        DegreeDistanceMeters(forecast->positions[19], traj.At(anchor + 20));
    ++counted;
  }
  ASSERT_GT(counted, 5);
  EXPECT_LT(err_short, err_long);
}

}  // namespace
}  // namespace ppq::core
