/// \file bench_table2.cc
/// Reproduces Table 2: quality of summaries and STRQ evaluation — MAE
/// (metres), precision and recall per method on the Porto-like and
/// GeoLife-like workloads.
///
/// Setup per the paper (Section 6.2.1): codebooks are learned
/// independently per timestamp with the same codeword budget across
/// methods. The CQC-refined methods (PPQ-A, PPQ-S) answer with the local
/// search + verification strategy (which the paper reports as
/// precision = recall = 1); all other methods use the summary directly.
/// The per-dataset bit budget is sized so the budget is scarce relative
/// to the slice population (Porto 8 bits, GeoLife 6 bits at scale 1).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_engine.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle, const BenchOptions& options,
                int bits) {
  std::printf("\n=== Table 2 (%s): quality of summaries and STRQ ===\n",
              bundle.name.c_str());
  std::printf("%zu trajectories, %zu points, %d-bit per-tick codebooks, "
              "%zu queries\n",
              bundle.data.size(), bundle.data.TotalPoints(), bits,
              options.queries);
  std::printf("%-24s %10s %10s %10s\n", "Method", "MAE(m)", "Precision",
              "Recall");

  Rng rng(options.seed + 7);
  const auto queries =
      core::SampleQueries(bundle.data, options.queries, &rng);

  for (const std::string& name : AllMethodNames()) {
    MethodSetup setup;
    setup.mode = core::QuantizationMode::kFixedPerTick;
    setup.fixed_bits = bits;
    auto method = MakeCompressor(name, bundle, setup);
    CompressTimed(*method, bundle.data);

    const double mae = core::SummaryMaeMeters(*method, bundle.data);
    // STRQ evaluation cell: 1 km. The paper's graded precision/recall
    // values (e.g. Q-trajectory 0.43 at 1.7 km MAE) imply an evaluation
    // cell roughly an order of magnitude above gc; 1 km reproduces that
    // regime for the paper-scale MAEs.
    core::QueryEngine engine(method.get(), &bundle.data,
                             1000.0 / kMetersPerDegree);
    const bool cqc = (name == "PPQ-A" || name == "PPQ-S");
    WallTimer serve_timer;
    const auto eval = core::EvaluateStrq(
        engine, bundle.data, queries,
        cqc ? core::StrqMode::kExact : core::StrqMode::kApproximate);
    PrintThroughput(name, "serve", queries.size(),
                    serve_timer.ElapsedSeconds());
    std::printf("%-24s %10.2f %10.3f %10.3f\n", name.c_str(), mae,
                eval.precision, eval.recall);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  // Bit budgets sized so the codeword budget is scarce relative to the
  // slice populations at scale 1 (see EXPERIMENTS.md).
  RunDataset(MakePortoBundle(options), options, /*bits=*/6);
  RunDataset(MakeGeoLifeBundle(options), options, /*bits=*/5);
  return 0;
}
