#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "core/options.h"
#include "core/ppq_trajectory.h"
#include "datagen/generator.h"
#include "index/rectangle.h"

/// \file bench_common.h
/// Shared scaffolding for the table/figure reproduction binaries: workload
/// construction (Porto-like / GeoLife-like / sub-Porto, Section 6.1),
/// method factory covering the paper's nine compared methods, common
/// CLI parsing (--scale grows or shrinks every workload, --queries sets
/// the query batch size, --seed the RNG seed, --threads the serving
/// parallelism), and wall-clock throughput reporting so every bench run
/// leaves a parseable perf trail (points/sec encode, queries/sec serve).

namespace ppq::bench {

/// \brief Common benchmark CLI options.
struct BenchOptions {
  /// Multiplies trajectory counts (and the query batch) of every workload.
  double scale = 1.0;
  /// Query batch size (the paper uses 10,000; the default here is sized
  /// for laptop runtimes and can be raised with --queries).
  size_t queries = 1000;
  uint64_t seed = 42;
  /// Serving thread count for the executor-based benches; 0 sweeps a
  /// ladder (bench_serve) or means "hardware threads" elsewhere.
  size_t threads = 1;
};

/// Parse --scale=<f> --queries=<n> --seed=<n> --threads=<n>; unknown
/// flags are ignored.
BenchOptions ParseArgs(int argc, char** argv);

/// The value of a --json=<path> flag, or "" when absent. Every bench that
/// supports it writes its machine-readable perf record there (a
/// BENCH_<name>.json in CI, uploaded as an artifact so future PRs can
/// diff against this baseline).
std::string ParseJsonPath(int argc, char** argv);

/// \brief Accumulates named metric records and writes them as one JSON
/// document: {"bench": <name>, "records": [{"name": ..., <field>: <num>,
/// ...}, ...]}. Field order is preserved; values print with %.17g so the
/// file round-trips doubles exactly. No external JSON dependency.
class PerfJson {
 public:
  /// Start a new record; subsequent Field() calls attach to it.
  void Begin(const std::string& name);
  void Field(const std::string& key, double value);
  /// Convenience for string-valued fields (kernel level, workload name).
  void Text(const std::string& key, const std::string& value);
  /// Attach an already-serialized JSON value verbatim (no escaping) —
  /// how obs::Registry::RenderJson() embeds the run's metrics snapshot
  /// into the perf record. The caller owns the value's validity.
  void Raw(const std::string& key, const std::string& json);

  bool empty() const { return records_.empty(); }
  /// Write the document to \p path (overwrites); false on I/O failure.
  bool Write(const std::string& path, const std::string& bench) const;

 private:
  struct Entry {
    std::string key;
    bool is_text = false;
    bool is_raw = false;
    double number = 0.0;
    std::string text;
  };
  struct Record {
    std::string name;
    std::vector<Entry> entries;
  };
  std::vector<Record> records_;
};

/// \brief Print one machine-parseable throughput line:
///   [throughput] method=<name> phase=<phase> items=<n> seconds=<s> rate=<r>
/// Phases in use: "encode" (points/sec) and "serve" (queries/sec). The
/// uniform shape is what lets BENCH_*.json capture a perf trajectory
/// across runs.
void PrintThroughput(const std::string& method, const char* phase,
                     size_t items, double seconds);

/// Compress \p data into \p method (streaming tick by tick + Finish) and
/// print the encode throughput line.
void CompressTimed(core::Compressor& method, const TrajectoryDataset& data);

/// \brief A benchmark workload plus its dataset-specific thresholds
/// (Section 6.1 parameter settings, recalibrated to the synthetic
/// workloads as documented in DESIGN.md).
struct DatasetBundle {
  std::string name;
  TrajectoryDataset data;
  /// eps_p for the spatial partition strategy.
  double eps_p_spatial = 0.03;
  /// eps_p for the autocorrelation (ACF) partition strategy.
  double eps_p_autocorr = 0.2;
  /// Index partition threshold eps_s.
  double eps_s = 0.1;
  /// TrajStore root region.
  index::Rect region;
};

/// Porto-like workload: many short urban taxi trips.
DatasetBundle MakePortoBundle(const BenchOptions& options);
/// GeoLife-like workload: fewer, longer, wide-area trajectories.
DatasetBundle MakeGeoLifeBundle(const BenchOptions& options);

/// \brief Quantization regime shared by every method in a run.
struct MethodSetup {
  core::QuantizationMode mode = core::QuantizationMode::kFixedPerTick;
  /// Bits per point in fixed mode.
  int fixed_bits = 8;
  /// eps_1 in degrees (error-bounded mode, and the CQC error space).
  double epsilon1 = 0.001;
  /// CQC cell size gs in degrees.
  double cqc_grid_size = 50.0 / 111320.0;
  bool enable_index = true;
};

/// The paper's method roster in table order.
const std::vector<std::string>& AllMethodNames();
/// The subset used by Table 4 (TrajStore excluded, see Section 6.2.3).
const std::vector<std::string>& FilteringMethodNames();

/// Instantiate a method by its table name, configured for \p bundle.
std::unique_ptr<core::Compressor> MakeCompressor(const std::string& name,
                                                 const DatasetBundle& bundle,
                                                 const MethodSetup& setup);

/// Spatial-deviation helper for Tables 5/6 and Figure 9: configure
/// \p setup so the method family achieves \p deviation_m metres. PPQ-A/S
/// get gs = sqrt(2) * D and eps_1^M = 2 * gs (the paper's setting); the
/// other methods get eps_1^M = D directly.
MethodSetup DeviationSetup(double deviation_m, bool cqc_method);

}  // namespace ppq::bench
