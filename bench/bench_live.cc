/// \file bench_live.cc
/// Ingest-while-serving benchmark: stream a Porto-like workload into a
/// LiveRepository from --ingestors=N concurrent producer threads (default
/// 2, lockstep per tick so every tick is fully appended before the ingest
/// frontier advances) while --submitters=N closed-loop threads (default
/// 4) drive the LiveQueryService with a mixed STRQ / window / k-NN / TPQ
/// stream. A request is submitted only once the frontier has reached its
/// query tick; every exact-mode STRQ and window response is then checked
/// against QueryEngine ground truth over the FULL dataset — valid mid
/// -ingest because ticks at or behind the frontier are completely
/// appended, the sealed \cup tail union is exact, and later ticks cannot
/// change a tick-t answer. That is the one-watermark freshness oracle:
/// responses may be served from a seal at most one watermark behind, yet
/// must still be ground-truth exact for everything already ingested.
///
/// After ingest completes, RollAll + Quiesce cut every shard and the
/// whole workload is re-served from the sealed state (same oracle, no
/// frontier gate), so both the live path and the post-roll path are
/// gated.
///
/// Output: shared [throughput] lines (phase=ingest/serve), per-kind and
/// aggregate [latency] lines for the concurrent phase (same shape as
/// bench_serve --mixed), and one final machine-parseable line:
///   [live] shards=4 ingestors=2 submitters=4 watermark_ticks=16
///          points=240000 points_per_sec=513000 served=5100 qps=12000
///          seals=12 checked=2600 identical=yes
/// The process exits non-zero if any gated response diverges from ground
/// truth (or no gated response was ever checked).
///
/// Durable modes (--dir=PATH):
///   --dir alone          run the full bench against a durable (WAL-backed)
///                        repository rooted at PATH (freshly initialised).
///   --crash-after-ticks=N  ingest ticks [0, N], SyncWal, then _Exit(2) —
///                        no shutdown, no destructors, background seals
///                        killed mid-flight: a process-kill crash image.
///   --recover            reopen PATH, verify the recovered frontier
///                        (point counts + exact-mode gates vs ground
///                        truth), resume ingest past N, cut, re-gate the
///                        whole workload, and print the CI gate line:
///                        [recover] ... identical=yes
/// The crash/recover pair must be invoked with identical dataset flags
/// (and the same --crash-after-ticks) so both runs derive the same
/// deterministic stream and workload.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench/bench_common.h"
#include "common/geo.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "repo/live_query_service.h"
#include "repo/live_repository.h"

namespace ppq::bench {
namespace {

constexpr size_t kKnnK = 8;
constexpr int kTpqLength = 8;
constexpr size_t kNoTruth = static_cast<size_t>(-1);

/// Reusable rendezvous for the lockstep ingest threads (C++17 has no
/// std::barrier): the last arriver of each generation runs \p on_complete
/// before releasing the others — that is where the frontier is published,
/// so a tick is visible to the gate only after every producer appended
/// its share of it.
class TickBarrier {
 public:
  explicit TickBarrier(size_t parties) : parties_(parties) {}

  template <typename Fn>
  void ArriveAndWait(Fn&& on_complete) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      on_complete();
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != generation; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

/// One mixed request plus the tick the frontier must reach before it may
/// be submitted, and (for the exact-mode gates) its ground-truth answer.
struct LiveWorkload {
  struct Item {
    core::QueryRequest request;
    Tick tick = 0;
    /// Index into `truths`, or kNoTruth for latency-only requests.
    size_t truth = kNoTruth;
  };
  std::vector<Item> items;
  std::vector<std::vector<TrajId>> truths;
};

LiveWorkload MakeWorkload(const TrajectoryDataset& data, size_t queries,
                          uint64_t seed, double cell_size) {
  LiveWorkload w;
  Rng rng(seed);
  // Gated: exact STRQ + exact window, ground truth from the raw data.
  for (const auto& q : core::SampleQueries(data, queries / 2, &rng)) {
    std::vector<TrajId> truth = core::QueryEngine::GroundTruth(data, q,
                                                               cell_size);
    std::sort(truth.begin(), truth.end());
    w.items.push_back({core::StrqRequest{q, core::StrqMode::kExact}, q.tick,
                       w.truths.size()});
    w.truths.push_back(std::move(truth));
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    const core::WindowSpec window{
        core::Window{q.position.x - half, q.position.y - half,
                     q.position.x + half, q.position.y + half},
        q.tick};
    std::vector<TrajId> truth = core::QueryEngine::WindowGroundTruth(
        data, window.window, window.tick);
    std::sort(truth.begin(), truth.end());
    w.items.push_back({core::WindowRequest{window, core::StrqMode::kExact},
                       window.tick, w.truths.size()});
    w.truths.push_back(std::move(truth));
  }
  // Latency-only breadth: local-search STRQ, k-NN, TPQ.
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    w.items.push_back(
        {core::StrqRequest{q, core::StrqMode::kLocalSearch}, q.tick});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    w.items.push_back({core::KnnRequest{q, kKnnK}, q.tick});
  }
  for (const auto& q : core::SampleQueries(data, queries / 8, &rng)) {
    w.items.push_back(
        {core::TpqRequest{q, kTpqLength, core::StrqMode::kExact}, q.tick});
  }
  std::shuffle(w.items.begin(), w.items.end(), rng.engine());
  return w;
}

/// Check one gated response against its precomputed ground truth.
bool CheckGate(const LiveWorkload& w, const LiveWorkload::Item& item,
               const core::QueryResponse& response) {
  const auto& result = std::get<core::StrqResult>(response.result);
  std::vector<TrajId> ids = result.ids;
  std::sort(ids.begin(), ids.end());
  return ids == w.truths[item.truth];
}

struct LiveFlags {
  uint32_t shards = 4;
  size_t ingestors = 2;
  size_t submitters = 4;
  Tick watermark_ticks = 16;
  /// Durable mode: backing directory (empty = memory-only).
  std::string dir;
  /// >= 0: ingest ticks [0, crash_after] then _Exit without shutdown.
  Tick crash_after = -1;
  /// Reopen --dir, verify recovery, resume, and print the gate line.
  bool recover = false;
  /// Override Options::wal_sync_interval (0 = library default).
  size_t wal_sync = 0;
};

repo::LiveRepository::Options MakeLiveOptions(const LiveFlags& flags,
                                              size_t threads) {
  repo::LiveRepository::Options live_options;
  live_options.num_shards = flags.shards;
  live_options.num_threads = threads;
  live_options.watermark_ticks = flags.watermark_ticks;
  if (flags.wal_sync != 0) live_options.wal_sync_interval = flags.wal_sync;
  return live_options;
}

/// Ingest the deterministic stream through `--crash-after-ticks`, sync the
/// logs, then die the hard way: no Quiesce, no destructors, background
/// seals killed wherever they happen to be. The directory left behind is
/// the crash image `--recover` must resurrect.
int RunCrash(const BenchOptions& options, const LiveFlags& flags) {
  std::printf("=== bench_live --crash-after-ticks: durable ingest, then "
              "process kill ===\n");
  DatasetBundle bundle = MakePortoBundle(options);
  const Tick max_tick = bundle.data.MaxTick();
  const Tick stop = std::min(flags.crash_after, max_tick);
  const size_t threads = options.threads == 0 ? 4 : options.threads;

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  std::filesystem::remove_all(flags.dir);
  auto opened = repo::LiveRepository::Open(
      flags.dir,
      [&bundle, &setup](uint32_t) {
        return MakeCompressor("PPQ-A", bundle, setup);
      },
      MakeLiveOptions(flags, threads));
  if (!opened.ok()) {
    std::fprintf(stderr, "ERROR: open %s: %s\n", flags.dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const auto live = *opened;

  WallTimer timer;
  for (Tick t = 0; t <= stop; ++t) {
    const PointBatch batch = bundle.data.BatchAt(t);
    if (batch.empty()) continue;
    if (!live->Append(batch).ok()) {
      std::fprintf(stderr, "ERROR: Append rejected tick %lld\n",
                   static_cast<long long>(t));
      return 1;
    }
  }
  if (!live->SyncWal().ok() || !live->DurabilityError().ok()) {
    std::fprintf(stderr, "ERROR: durability failure before the crash: %s\n",
                 live->DurabilityError().ToString().c_str());
    return 1;
  }
  PrintThroughput("LiveRepo/" + std::to_string(flags.shards) + "s", "ingest",
                  live->TotalPointsAppended(), timer.ElapsedSeconds());
  std::printf("[crash] shards=%u crash_after_ticks=%lld points=%zu "
              "synced=yes\n",
              flags.shards, static_cast<long long>(stop),
              live->TotalPointsAppended());
  std::fflush(stdout);
  // The crash: skip every destructor (WAL close, pool drain, in-flight
  // seal completion). Exit 2 so a wrapper can tell "crashed as asked"
  // from a real failure.
  std::_Exit(2);
}

/// Reopen the crash image, prove the recovered frontier answers exactly,
/// resume the stream past the crash tick, cut, and re-gate everything.
int RunRecover(const BenchOptions& options, const LiveFlags& flags) {
  std::printf("=== bench_live --recover: reopen, verify, resume ===\n");
  DatasetBundle bundle = MakePortoBundle(options);
  const double cell_size = 100.0 / kMetersPerDegree;
  const size_t threads = options.threads == 0 ? 4 : options.threads;
  const Tick max_tick = bundle.data.MaxTick();
  const Tick frontier =
      flags.crash_after >= 0 ? std::min(flags.crash_after, max_tick)
                             : max_tick;

  const LiveWorkload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 99,
                   cell_size);

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  WallTimer open_timer;
  auto opened = repo::OpenLiveRepository(
      flags.dir,
      [&bundle, &setup](uint32_t) {
        return MakeCompressor("PPQ-A", bundle, setup);
      },
      MakeLiveOptions(flags, threads));
  if (!opened.ok()) {
    std::fprintf(stderr, "ERROR: recover %s: %s\n", flags.dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const auto live = *opened;
  const double open_seconds = open_timer.ElapsedSeconds();

  // Every synced point at or behind the crash tick must have survived.
  size_t expected = 0;
  for (Tick t = 0; t <= frontier; ++t) {
    expected += bundle.data.BatchAt(t).size();
  }
  const size_t recovered_points = live->TotalPointsAppended();
  bool identical = recovered_points == expected;
  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: recovered %zu points, expected %zu at tick %lld\n",
                 recovered_points, expected,
                 static_cast<long long>(frontier));
  }

  const auto raw =
      std::make_shared<const TrajectoryDataset>(std::move(bundle.data));
  repo::LiveQueryService::Options serve_options;
  serve_options.num_threads = threads;
  serve_options.raw = raw;
  serve_options.cell_size = cell_size;
  repo::LiveQueryService service(
      std::static_pointer_cast<const repo::LiveRepository>(live),
      serve_options);

  // Gate the recovered frontier: exact answers straight out of replay.
  size_t checked = 0;
  for (const LiveWorkload::Item& item : workload.items) {
    if (item.truth == kNoTruth || item.tick > frontier) continue;
    const core::QueryResponse response = service.Submit(item.request).get();
    ++checked;
    if (!CheckGate(workload, item, response)) identical = false;
  }
  const size_t recovered_checked = checked;

  // Recovery resumes: finish the stream, cut, and re-gate everything —
  // the replayed encoder must behave exactly like the one that died.
  for (Tick t = frontier + 1; t <= max_tick; ++t) {
    const PointBatch batch = raw->BatchAt(t);
    if (batch.empty()) continue;
    if (!live->Append(batch).ok()) identical = false;
  }
  live->RollAll();
  live->Quiesce();
  for (const LiveWorkload::Item& item : workload.items) {
    if (item.truth == kNoTruth) continue;
    const core::QueryResponse response = service.Submit(item.request).get();
    ++checked;
    if (!CheckGate(workload, item, response)) identical = false;
  }
  if (!live->DurabilityError().ok()) {
    std::fprintf(stderr, "ERROR: durability error after resume: %s\n",
                 live->DurabilityError().ToString().c_str());
    identical = false;
  }

  const bool ok = identical && checked > 0;
  std::printf("[recover] shards=%u crash_after_ticks=%lld open_ms=%.1f "
              "recovered_points=%zu resumed_points=%zu "
              "recovered_checked=%zu checked=%zu identical=%s\n",
              flags.shards, static_cast<long long>(frontier),
              open_seconds * 1e3, recovered_points,
              live->TotalPointsAppended(), recovered_checked, checked,
              ok ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr, "ERROR: recovered state diverged from ground "
                         "truth\n");
  }
  if (checked == 0) {
    std::fprintf(stderr, "ERROR: no gated response was checked\n");
  }
  return ok ? 0 : 1;
}

int Run(const BenchOptions& options, const LiveFlags& flags,
        const std::string& json_path) {
  std::printf("=== bench_live: concurrent ingest + mixed serving over a "
              "LiveRepository ===\n");
  DatasetBundle bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle.name.c_str(), bundle.data.size(),
              bundle.data.TotalPoints());
  const double cell_size = 100.0 / kMetersPerDegree;
  const size_t threads = options.threads == 0 ? 4 : options.threads;

  const LiveWorkload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 99,
                   cell_size);
  std::printf("stream: %zu mixed requests (%zu exact-mode gates), "
              "%zu ingestors, %zu submitters, watermark_ticks=%lld\n",
              workload.items.size(), workload.truths.size(), flags.ingestors,
              flags.submitters,
              static_cast<long long>(flags.watermark_ticks));

  // Pre-split every tick into one PointBatch per ingestor (round-robin by
  // slice index) so the timed loop is pure Append.
  const Tick max_tick = bundle.data.MaxTick();
  std::vector<std::vector<PointBatch>> parts(flags.ingestors);
  for (auto& per_thread : parts) {
    per_thread.reserve(static_cast<size_t>(max_tick) + 1);
  }
  for (Tick t = 0; t <= max_tick; ++t) {
    const PointBatch full = bundle.data.BatchAt(t);
    for (size_t j = 0; j < flags.ingestors; ++j) {
      PointBatch sub(t);
      sub.Reserve(full.size() / flags.ingestors + 1);
      for (size_t i = j; i < full.size(); i += flags.ingestors) {
        sub.Add(full.ids[i], full.positions[i]);
      }
      parts[j].push_back(std::move(sub));
    }
  }

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  const auto factory = [&bundle, &setup](uint32_t) {
    return MakeCompressor("PPQ-A", bundle, setup);
  };
  std::shared_ptr<repo::LiveRepository> live;
  if (flags.dir.empty()) {
    live = std::make_shared<repo::LiveRepository>(
        factory, MakeLiveOptions(flags, threads));
  } else {
    // Durable bench: fresh directory, WAL on the ingest path, containers
    // persisted at every seal — the end-to-end durability overhead shows
    // up in the [throughput] ingest line.
    std::filesystem::remove_all(flags.dir);
    auto opened = repo::LiveRepository::Open(flags.dir, factory,
                                            MakeLiveOptions(flags, threads));
    if (!opened.ok()) {
      std::fprintf(stderr, "ERROR: open %s: %s\n", flags.dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    live = *opened;
  }

  const auto raw =
      std::make_shared<const TrajectoryDataset>(std::move(bundle.data));
  repo::LiveQueryService::Options serve_options;
  serve_options.num_threads = threads;
  serve_options.raw = raw;
  serve_options.cell_size = cell_size;
  repo::LiveQueryService service(
      std::static_pointer_cast<const repo::LiveRepository>(live),
      serve_options);

  // --- Concurrent phase: lockstep ingest vs closed-loop submitters ------
  std::atomic<Tick> frontier{repo::kNoTickYet};
  std::atomic<bool> done{false};
  std::atomic<bool> identical{true};
  std::atomic<bool> append_ok{true};
  std::atomic<size_t> served{0};
  std::atomic<size_t> checked{0};
  TickBarrier barrier(flags.ingestors);
  std::vector<std::vector<std::pair<core::QueryKind, uint64_t>>> latencies(
      flags.submitters);
  // Per-response serve-stage breakdowns for the [stage]/[stages] report
  // (per-submitter buffers, merged after the join).
  std::vector<std::vector<core::QueryStats>> stage_stats(flags.submitters);

  WallTimer concurrent_timer;
  std::vector<std::thread> ingest_threads;
  ingest_threads.reserve(flags.ingestors);
  for (size_t j = 0; j < flags.ingestors; ++j) {
    ingest_threads.emplace_back([&, j] {
      for (Tick t = 0; t <= max_tick; ++t) {
        if (!live->Append(parts[j][static_cast<size_t>(t)]).ok()) {
          append_ok.store(false, std::memory_order_relaxed);
        }
        barrier.ArriveAndWait(
            [&] { frontier.store(t, std::memory_order_release); });
      }
    });
  }

  std::vector<std::thread> submit_threads;
  submit_threads.reserve(flags.submitters);
  for (size_t s = 0; s < flags.submitters; ++s) {
    submit_threads.emplace_back([&, s] {
      while (!done.load(std::memory_order_acquire)) {
        bool any = false;
        for (size_t i = s; i < workload.items.size();
             i += flags.submitters) {
          if (done.load(std::memory_order_acquire)) break;
          const LiveWorkload::Item& item = workload.items[i];
          if (item.tick > frontier.load(std::memory_order_acquire)) {
            continue;
          }
          any = true;
          const auto start = std::chrono::steady_clock::now();
          core::QueryResponse response = service.Submit(item.request).get();
          latencies[s].emplace_back(
              core::KindOf(item.request),
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count()));
          stage_stats[s].push_back(response.stats);
          served.fetch_add(1, std::memory_order_relaxed);
          if (item.truth != kNoTruth) {
            checked.fetch_add(1, std::memory_order_relaxed);
            if (!CheckGate(workload, item, response)) {
              identical.store(false, std::memory_order_relaxed);
            }
          }
        }
        if (!any) std::this_thread::yield();
      }
    });
  }

  for (std::thread& t : ingest_threads) t.join();
  const double ingest_seconds = concurrent_timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::thread& t : submit_threads) t.join();
  const double concurrent_seconds = concurrent_timer.ElapsedSeconds();

  const size_t total_points = live->TotalPointsAppended();
  PrintThroughput("LiveRepo/" + std::to_string(flags.shards) + "s", "ingest",
                  total_points, ingest_seconds);
  const size_t live_served = served.load();
  PrintThroughput("LiveService/" + std::to_string(threads) + "t", "serve",
                  live_served, concurrent_seconds);

  // --- Latency breakdown for the concurrent phase -----------------------
  const auto percentile = [](const std::vector<uint64_t>& sorted,
                             double p) -> uint64_t {
    if (sorted.empty()) return 0;
    const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  std::vector<uint64_t> all;
  std::vector<uint64_t> by_kind[4];
  for (const auto& per_thread : latencies) {
    for (const auto& [kind, us] : per_thread) {
      all.push_back(us);
      by_kind[static_cast<size_t>(kind)].push_back(us);
    }
  }
  std::sort(all.begin(), all.end());
  PerfJson json;
  const auto latency_record = [&](const std::string& name,
                                  const std::vector<uint64_t>& sorted) {
    json.Begin(name);
    json.Field("requests", static_cast<double>(sorted.size()));
    json.Field("p50_us", static_cast<double>(percentile(sorted, 0.50)));
    json.Field("p95_us", static_cast<double>(percentile(sorted, 0.95)));
    json.Field("p99_us", static_cast<double>(percentile(sorted, 0.99)));
    json.Field("max_us",
               static_cast<double>(sorted.empty() ? 0 : sorted.back()));
  };
  constexpr const char* kKindNames[4] = {"strq", "window", "knn", "tpq"};
  for (size_t kind = 0; kind < 4; ++kind) {
    std::vector<uint64_t>& sample = by_kind[kind];
    if (sample.empty()) continue;
    std::sort(sample.begin(), sample.end());
    std::printf("[latency] kind=%s requests=%zu p50_us=%llu p95_us=%llu "
                "p99_us=%llu max_us=%llu\n",
                kKindNames[kind], sample.size(),
                static_cast<unsigned long long>(percentile(sample, 0.50)),
                static_cast<unsigned long long>(percentile(sample, 0.95)),
                static_cast<unsigned long long>(percentile(sample, 0.99)),
                static_cast<unsigned long long>(sample.back()));
    latency_record(std::string("latency_") + kKindNames[kind], sample);
  }
  std::printf("[latency] p50_us=%llu p95_us=%llu p99_us=%llu max_us=%llu\n",
              static_cast<unsigned long long>(percentile(all, 0.50)),
              static_cast<unsigned long long>(percentile(all, 0.95)),
              static_cast<unsigned long long>(percentile(all, 0.99)),
              static_cast<unsigned long long>(all.empty() ? 0 : all.back()));
  latency_record("latency", all);

  // --- Serve-side stage breakdown of the concurrent phase ---------------
  {
    std::array<std::vector<uint64_t>, core::kNumServeStages> samples;
    std::array<uint64_t, core::kNumServeStages> sums{};
    uint64_t queue_sum = 0;
    uint64_t eval_sum = 0;
    size_t requests = 0;
    for (const auto& per_thread : stage_stats) {
      for (const core::QueryStats& s : per_thread) {
        ++requests;
        queue_sum += s.queue_micros;
        eval_sum += s.eval_micros;
        for (size_t st = 0; st < core::kNumServeStages; ++st) {
          samples[st].push_back(s.stage_micros[st]);
          sums[st] += s.stage_micros[st];
        }
      }
    }
    for (size_t st = 0; st < core::kNumServeStages; ++st) {
      std::vector<uint64_t>& sample = samples[st];
      std::sort(sample.begin(), sample.end());
      std::printf("[stage] name=%s requests=%zu p50_us=%llu p95_us=%llu "
                  "p99_us=%llu max_us=%llu sum_us=%llu\n",
                  core::kServeStageNames[st], sample.size(),
                  static_cast<unsigned long long>(percentile(sample, 0.50)),
                  static_cast<unsigned long long>(percentile(sample, 0.95)),
                  static_cast<unsigned long long>(percentile(sample, 0.99)),
                  static_cast<unsigned long long>(
                      sample.empty() ? 0 : sample.back()),
                  static_cast<unsigned long long>(sums[st]));
      latency_record(std::string("stage_") + core::kServeStageNames[st],
                     sample);
      json.Field("sum_us", static_cast<double>(sums[st]));
    }
    std::printf("[stages] requests=%zu queue_sum_us=%llu eval_sum_us=%llu\n",
                requests, static_cast<unsigned long long>(queue_sum),
                static_cast<unsigned long long>(eval_sum));
    json.Begin("stages");
    json.Field("requests", static_cast<double>(requests));
    json.Field("queue_sum_us", static_cast<double>(queue_sum));
    json.Field("eval_sum_us", static_cast<double>(eval_sum));
  }

  // --- Post-roll sweep: cut every shard, re-gate the whole workload -----
  live->RollAll();
  live->Quiesce();
  {
    std::vector<core::QueryRequest> requests;
    requests.reserve(workload.items.size());
    for (const auto& item : workload.items) requests.push_back(item.request);
    WallTimer sweep_timer;
    auto futures = service.SubmitBatch(std::move(requests));
    for (size_t i = 0; i < futures.size(); ++i) {
      const core::QueryResponse response = futures[i].get();
      const LiveWorkload::Item& item = workload.items[i];
      if (item.truth != kNoTruth) {
        checked.fetch_add(1, std::memory_order_relaxed);
        if (!CheckGate(workload, item, response)) {
          identical.store(false, std::memory_order_relaxed);
        }
      }
    }
    PrintThroughput("LiveService/sealed", "serve", futures.size(),
                    sweep_timer.ElapsedSeconds());
  }

  // --- Ingest/durability stage latencies, from the metrics registry -----
  // One [ingest-stage] line per populated per-shard series: append (lock
  // wait + WAL + staging + tail publish), flush, seal cut, WAL
  // append/fdatasync, rotation. Durable runs (--dir) show the WAL lines;
  // memory-only runs show the in-memory stages alone.
  {
    const obs::MetricsSnapshot snap = obs::Registry::Default().Snapshot();
    for (const auto& h : snap.histograms) {
      const bool ingest_side = h.name.rfind("ppq_ingest_", 0) == 0 ||
                               h.name.rfind("ppq_wal_", 0) == 0 ||
                               h.name.rfind("ppq_recovery_", 0) == 0;
      if (!ingest_side || h.snapshot.count == 0) continue;
      // ppq_wal_append_micros -> wal_append
      std::string stage = h.name.substr(4);
      const size_t suffix = stage.rfind("_micros");
      if (suffix != std::string::npos) stage.resize(suffix);
      unsigned long shard_no = 0;
      std::sscanf(h.labels.c_str(), "shard=\"%lu\"", &shard_no);
      std::printf("[ingest-stage] stage=%s shard=%lu count=%llu "
                  "p50_us=%llu p95_us=%llu p99_us=%llu max_us=%llu "
                  "mean_us=%.1f\n",
                  stage.c_str(), shard_no,
                  static_cast<unsigned long long>(h.snapshot.count),
                  static_cast<unsigned long long>(h.snapshot.Quantile(0.50)),
                  static_cast<unsigned long long>(h.snapshot.Quantile(0.95)),
                  static_cast<unsigned long long>(h.snapshot.Quantile(0.99)),
                  static_cast<unsigned long long>(h.snapshot.max),
                  h.snapshot.Mean());
      json.Begin("ingest_" + stage + "_shard" + std::to_string(shard_no));
      json.Field("count", static_cast<double>(h.snapshot.count));
      json.Field("p50_us", static_cast<double>(h.snapshot.Quantile(0.50)));
      json.Field("p95_us", static_cast<double>(h.snapshot.Quantile(0.95)));
      json.Field("p99_us", static_cast<double>(h.snapshot.Quantile(0.99)));
      json.Field("max_us", static_cast<double>(h.snapshot.max));
      json.Field("mean_us", h.snapshot.Mean());
    }
  }

  const bool durable_ok = flags.dir.empty() || live->DurabilityError().ok();
  if (!durable_ok) {
    std::fprintf(stderr, "ERROR: durability error: %s\n",
                 live->DurabilityError().ToString().c_str());
  }
  const bool ok = identical.load() && append_ok.load() &&
                  checked.load() > 0 && durable_ok;
  const double points_per_sec =
      ingest_seconds > 0.0
          ? static_cast<double>(total_points) / ingest_seconds
          : 0.0;
  const double qps = concurrent_seconds > 0.0
                         ? static_cast<double>(live_served) /
                               concurrent_seconds
                         : 0.0;
  std::printf("[live] shards=%u ingestors=%zu submitters=%zu "
              "watermark_ticks=%lld points=%zu points_per_sec=%.0f "
              "served=%zu qps=%.0f seals=%llu checked=%zu identical=%s\n",
              flags.shards, flags.ingestors, flags.submitters,
              static_cast<long long>(flags.watermark_ticks), total_points,
              points_per_sec, live_served, qps,
              static_cast<unsigned long long>(live->MinSealEpoch()),
              checked.load(), ok ? "yes" : "NO");

  json.Begin("live");
  json.Field("shards", static_cast<double>(flags.shards));
  json.Field("ingestors", static_cast<double>(flags.ingestors));
  json.Field("submitters", static_cast<double>(flags.submitters));
  json.Field("watermark_ticks", static_cast<double>(flags.watermark_ticks));
  json.Field("points", static_cast<double>(total_points));
  json.Field("points_per_sec", points_per_sec);
  json.Field("served", static_cast<double>(live_served));
  json.Field("qps", qps);
  json.Field("seals", static_cast<double>(live->MinSealEpoch()));
  json.Field("checked", static_cast<double>(checked.load()));
  json.Text("identical", ok ? "yes" : "no");
  json.Text("durable", flags.dir.empty() ? "no" : "yes");
  json.Begin("metrics");
  json.Raw("registry", obs::Registry::Default().RenderJson());
  if (!json_path.empty() && !json.Write(json_path, "live")) {
    std::fprintf(stderr, "bench_live: could not write %s\n",
                 json_path.c_str());
    return 2;
  }

  if (!append_ok.load()) {
    std::fprintf(stderr, "ERROR: Append rejected a batch during lockstep "
                         "ingest\n");
  }
  if (!identical.load()) {
    std::fprintf(stderr, "ERROR: a gated response diverged from ground "
                         "truth (staleness bound violated)\n");
  }
  if (checked.load() == 0) {
    std::fprintf(stderr, "ERROR: no gated response was checked\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  ppq::bench::BenchOptions options = ppq::bench::ParseArgs(argc, argv);
  const std::string json_path = ppq::bench::ParseJsonPath(argc, argv);
  ppq::bench::LiveFlags flags;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) threads_given = true;
    if (arg.rfind("--shards=", 0) == 0) {
      flags.shards = static_cast<uint32_t>(
          std::strtoul(arg.substr(9).c_str(), nullptr, 10));
      if (flags.shards == 0) flags.shards = 1;
    }
    if (arg.rfind("--ingestors=", 0) == 0) {
      flags.ingestors = static_cast<size_t>(
          std::strtoull(arg.substr(12).c_str(), nullptr, 10));
      if (flags.ingestors == 0) flags.ingestors = 1;
    }
    if (arg.rfind("--submitters=", 0) == 0) {
      flags.submitters = static_cast<size_t>(
          std::strtoull(arg.substr(13).c_str(), nullptr, 10));
      if (flags.submitters == 0) flags.submitters = 1;
    }
    if (arg.rfind("--watermark=", 0) == 0) {
      flags.watermark_ticks = static_cast<ppq::Tick>(
          std::strtoll(arg.substr(12).c_str(), nullptr, 10));
      if (flags.watermark_ticks <= 0) flags.watermark_ticks = 1;
    }
    if (arg.rfind("--dir=", 0) == 0) {
      flags.dir = arg.substr(6);
    }
    if (arg.rfind("--crash-after-ticks=", 0) == 0) {
      flags.crash_after = static_cast<ppq::Tick>(
          std::strtoll(arg.substr(20).c_str(), nullptr, 10));
    }
    if (arg == "--recover") {
      flags.recover = true;
    }
    if (arg.rfind("--wal-sync=", 0) == 0) {
      flags.wal_sync = static_cast<size_t>(
          std::strtoull(arg.substr(11).c_str(), nullptr, 10));
    }
  }
  // Serving workers default to 4 (like bench_serve --mixed).
  if (!threads_given) options.threads = 4;
  if ((flags.crash_after >= 0 || flags.recover) && flags.dir.empty()) {
    std::fprintf(stderr,
                 "--crash-after-ticks/--recover require --dir=PATH\n");
    return 1;
  }
  if (flags.recover) return ppq::bench::RunRecover(options, flags);
  if (flags.crash_after >= 0) return ppq::bench::RunCrash(options, flags);
  return ppq::bench::Run(options, flags, json_path);
}
