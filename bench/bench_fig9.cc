/// \file bench_fig9.cc
/// Reproduces Figure 9: compression ratio against spatial deviation
/// (200-1000 m) on (a) Porto-like, (b) GeoLife-like, and (c) the
/// sub-Porto dataset where REST is applicable. Same deviation regime as
/// Tables 5/6. For sub-Porto, the originals are the compression targets
/// and the derived variants form REST's reference set (Section 6.1).

#include <cstdio>

#include "baselines/rest.h"
#include "bench/bench_common.h"
#include "common/geo.h"
#include "common/timer.h"
#include "core/metrics.h"

namespace ppq::bench {
namespace {

const std::vector<double> kDeviations = {200.0, 400.0, 600.0, 800.0, 1000.0};

void RunStandard(const DatasetBundle& bundle) {
  std::printf("\n=== Figure 9 (%s): compression ratio vs spatial deviation "
              "(m) ===\n",
              bundle.name.c_str());
  std::printf("%-24s %8s %8s %8s %8s %8s\n", "Method", "200", "400", "600",
              "800", "1000");
  for (const std::string& name : AllMethodNames()) {
    const bool cqc = (name == "PPQ-A" || name == "PPQ-S");
    std::printf("%-24s", name.c_str());
    double total_seconds = 0.0;
    size_t total_points = 0;
    for (double deviation : kDeviations) {
      MethodSetup setup = DeviationSetup(deviation, cqc);
      setup.enable_index = false;
      auto method = MakeCompressor(name, bundle, setup);
      WallTimer timer;
      method->Compress(bundle.data);
      total_seconds += timer.ElapsedSeconds();
      total_points += bundle.data.TotalPoints();
      std::printf(" %8.2f", core::CompressionRatio(*method, bundle.data));
      std::fflush(stdout);
    }
    std::printf("\n");
    PrintThroughput(name, "encode", total_points, total_seconds);
  }
}

void RunSubPorto(const BenchOptions& options) {
  // Build sub-Porto: originals + 4 noisy variants each; compress the
  // originals, use everything else as REST's reference set.
  datagen::GeneratorOptions gen;
  gen.num_trajectories = std::max(20, static_cast<int>(800 * options.scale));
  gen.horizon = 400;
  gen.min_length = 30;
  gen.max_length = 300;
  gen.seed = options.seed + 5;
  const TrajectoryDataset base =
      datagen::PortoLikeGenerator(gen).Generate();
  const TrajectoryDataset expanded = datagen::MakeSubPorto(base);

  TrajectoryDataset targets;
  TrajectoryDataset reference;
  for (size_t i = 0; i < expanded.size(); ++i) {
    if (i % 5 == 0) {
      targets.Add(expanded[i]);
    } else {
      reference.Add(expanded[i]);
    }
  }

  DatasetBundle bundle = MakePortoBundle(options);
  bundle.name = "sub-Porto";
  bundle.data = targets;

  std::printf("\n=== Figure 9c (sub-Porto): compression ratio incl. REST "
              "===\n");
  std::printf("(%zu targets, %zu reference trajectories)\n", targets.size(),
              reference.size());
  std::printf("%-24s %8s %8s %8s %8s %8s\n", "Method", "200", "400", "600",
              "800", "1000");

  for (const std::string& name : AllMethodNames()) {
    if (name == "TrajStore") continue;  // the paper's Fig 9c omits it
    const bool cqc = (name == "PPQ-A" || name == "PPQ-S");
    std::printf("%-24s", name.c_str());
    double total_seconds = 0.0;
    size_t total_points = 0;
    for (double deviation : kDeviations) {
      MethodSetup setup = DeviationSetup(deviation, cqc);
      setup.enable_index = false;
      auto method = MakeCompressor(name, bundle, setup);
      WallTimer timer;
      method->Compress(bundle.data);
      total_seconds += timer.ElapsedSeconds();
      total_points += bundle.data.TotalPoints();
      std::printf(" %8.2f", core::CompressionRatio(*method, bundle.data));
      std::fflush(stdout);
    }
    std::printf("\n");
    PrintThroughput(name, "encode", total_points, total_seconds);
  }

  std::printf("%-24s", "REST");
  double rest_seconds = 0.0;
  size_t rest_points = 0;
  for (double deviation : kDeviations) {
    baselines::Rest::Options rest_options;
    rest_options.deviation = MetersToDegrees(deviation);
    baselines::Rest rest(reference, rest_options);
    WallTimer timer;
    rest.Compress(bundle.data);
    rest_seconds += timer.ElapsedSeconds();
    rest_points += bundle.data.TotalPoints();
    std::printf(" %8.2f", core::CompressionRatio(rest, bundle.data));
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintThroughput("REST", "encode", rest_points, rest_seconds);
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunStandard(MakePortoBundle(options));
  RunStandard(MakeGeoLifeBundle(options));
  RunSubPorto(options);
  return 0;
}
