/// \file bench_table3.cc
/// Reproduces Table 3: TPQ mean absolute error against different path
/// lengths l in {10, 20, 30, 40, 50}. As in the paper, the same
/// (trajectory, tick) anchors are used for every method so the retrieved
/// sub-trajectories are comparable, and the summary regime matches
/// Table 2 (per-tick codebooks).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle, const BenchOptions& options,
                int bits) {
  std::printf("\n=== Table 3 (%s): TPQ MAE (m) vs path length ===\n",
              bundle.name.c_str());
  std::printf("%-24s %9s %9s %9s %9s %9s\n", "Method", "l=10", "l=20",
              "l=30", "l=40", "l=50");

  // Shared anchors: (trajectory, tick) pairs with room to extend.
  Rng rng(options.seed + 13);
  std::vector<core::QuerySpec> queries;
  std::vector<TrajId> ids;
  const size_t count = options.queries;
  for (size_t i = 0; i < count; ++i) {
    const auto& traj = bundle.data[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(bundle.data.size()) - 1))];
    const size_t offset = static_cast<size_t>(
        rng.UniformInt(0, std::max<int64_t>(0, static_cast<int64_t>(
                                                   traj.size()) -
                                                   1)));
    queries.push_back({traj.points[offset],
                       traj.start_tick + static_cast<Tick>(offset)});
    ids.push_back(traj.id);
  }

  for (const std::string& name : AllMethodNames()) {
    MethodSetup setup;
    setup.mode = core::QuantizationMode::kFixedPerTick;
    setup.fixed_bits = bits;
    setup.enable_index = false;  // TPQ cost here is reconstruction only
    auto method = MakeCompressor(name, bundle, setup);
    CompressTimed(*method, bundle.data);

    std::printf("%-24s", name.c_str());
    WallTimer serve_timer;
    size_t served = 0;
    for (int length : {10, 20, 30, 40, 50}) {
      const double mae = core::EvaluateTpqMaeMeters(*method, bundle.data,
                                                    queries, ids, length);
      served += queries.size();
      std::printf(" %9.2f", mae);
    }
    std::printf("\n");
    PrintThroughput(name, "serve", served, serve_timer.ElapsedSeconds());
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options), options, /*bits=*/6);
  RunDataset(MakeGeoLifeBundle(options), options, /*bits=*/5);
  return 0;
}
