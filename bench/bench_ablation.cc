/// \file bench_ablation.cc
/// Ablations for the design choices DESIGN.md section 4 calls out, beyond
/// what the paper's tables isolate:
///
///   A. codebook growth policy — threshold-clustered growth (Eq. 3's
///      minimality objective) vs verbatim insertion;
///   B. autocorrelation feature — bounded ACF (our default) vs raw AR
///      least-squares coefficients, at matched eps_p;
///   C. the merge step of incremental partitioning — on vs off;
///   D. prediction order k;
///   E. CQC cell size gs — accuracy vs summary size trade-off.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/geo.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/ppq_trajectory.h"

namespace ppq::bench {
namespace {

core::PpqOptions Tuned(const DatasetBundle& bundle, bool autocorr) {
  core::PpqOptions o = autocorr ? core::MakePpqA() : core::MakePpqS();
  o.epsilon_p = autocorr ? bundle.eps_p_autocorr : bundle.eps_p_spatial;
  o.enable_index = false;
  return o;
}

void GrowthPolicyAblation(const DatasetBundle& bundle) {
  std::printf("\n--- Ablation A (%s): codebook growth policy ---\n",
              bundle.name.c_str());
  std::printf("%-12s %12s %10s %10s\n", "policy", "codewords", "MAE(m)",
              "build(s)");
  for (const auto growth : {quantizer::GrowthPolicy::kCluster,
                            quantizer::GrowthPolicy::kVerbatim}) {
    core::PpqOptions o = Tuned(bundle, false);
    o.growth = growth;
    core::PpqTrajectory method(o);
    WallTimer timer;
    method.Compress(bundle.data);
    std::printf("%-12s %12zu %10.2f %10.2f\n",
                growth == quantizer::GrowthPolicy::kCluster ? "cluster"
                                                            : "verbatim",
                method.NumCodewords(),
                core::SummaryMaeMeters(method, bundle.data),
                timer.ElapsedSeconds());
    PrintThroughput(method.name(), "encode", bundle.data.TotalPoints(),
                    timer.ElapsedSeconds());
  }
}

void AutocorrFeatureAblation(const DatasetBundle& bundle) {
  std::printf("\n--- Ablation B (%s): autocorrelation feature ---\n",
              bundle.name.c_str());
  std::printf("%-8s %8s %8s %10s %8s %10s\n", "feature", "peak q", "avg q",
              "MAE(m)", "ratio", "build(s)");
  for (const auto feature : {predictor::AutocorrFeature::kAcf,
                             predictor::AutocorrFeature::kArCoefficients}) {
    core::PpqOptions o = Tuned(bundle, true);
    o.autocorr_feature = feature;
    core::PpqTrajectory method(o);
    WallTimer timer;
    method.Compress(bundle.data);
    const double seconds = timer.ElapsedSeconds();
    PrintThroughput(method.name(), "encode", bundle.data.TotalPoints(),
                    seconds);
    int peak = 0;
    double sum = 0.0;
    for (const auto& s : method.tick_stats()) {
      peak = std::max(peak, s.partitions);
      sum += s.partitions;
    }
    std::printf("%-8s %8d %8.1f %10.2f %8.2f %10.2f\n",
                feature == predictor::AutocorrFeature::kAcf ? "ACF" : "AR",
                peak,
                method.tick_stats().empty()
                    ? 0.0
                    : sum / static_cast<double>(method.tick_stats().size()),
                core::SummaryMaeMeters(method, bundle.data),
                core::CompressionRatio(method, bundle.data), seconds);
  }
}

void MergeAblation(const DatasetBundle& bundle) {
  std::printf("\n--- Ablation C (%s): incremental-partitioning merge step "
              "---\n",
              bundle.name.c_str());
  std::printf("%-8s %8s %8s %12s\n", "merge", "peak q", "avg q",
              "partition(s)");
  for (const bool merge : {true, false}) {
    core::PpqOptions o = Tuned(bundle, false);
    core::PpqTrajectory probe(o);
    // The merge flag lives on the partitioner options; thread it through
    // by rebuilding with a tweaked option set.
    core::PpqOptions tweaked = probe.options();
    tweaked.enable_index = false;
    // enable_merge is internal to the partitioner; expose via epsilon_p
    // unchanged and a dedicated option.
    tweaked.partition_merge = merge;
    core::PpqTrajectory method(tweaked);
    CompressTimed(method, bundle.data);
    int peak = 0;
    double sum = 0.0;
    for (const auto& s : method.tick_stats()) {
      peak = std::max(peak, s.partitions);
      sum += s.partitions;
    }
    std::printf("%-8s %8d %8.1f %12.3f\n", merge ? "on" : "off", peak,
                method.tick_stats().empty()
                    ? 0.0
                    : sum / static_cast<double>(method.tick_stats().size()),
                method.partition_seconds());
  }
}

void PredictionOrderAblation(const DatasetBundle& bundle) {
  std::printf("\n--- Ablation D (%s): prediction order k ---\n",
              bundle.name.c_str());
  std::printf("%4s %12s %10s %8s\n", "k", "codewords", "MAE(m)", "ratio");
  for (int k : {1, 2, 3, 5}) {
    core::PpqOptions o = Tuned(bundle, false);
    o.prediction_order = k;
    core::PpqTrajectory method(o);
    CompressTimed(method, bundle.data);
    std::printf("%4d %12zu %10.2f %8.2f\n", k, method.NumCodewords(),
                core::SummaryMaeMeters(method, bundle.data),
                core::CompressionRatio(method, bundle.data));
  }
}

void CqcGridAblation(const DatasetBundle& bundle) {
  std::printf("\n--- Ablation E (%s): CQC cell size gs ---\n",
              bundle.name.c_str());
  std::printf("%8s %10s %10s %8s %10s\n", "gs(m)", "bound(m)", "MAE(m)",
              "ratio", "cqc bits");
  for (double gs_m : {12.5, 25.0, 50.0, 100.0}) {
    core::PpqOptions o = Tuned(bundle, false);
    o.cqc_grid_size = MetersToDegrees(gs_m);
    core::PpqTrajectory method(o);
    CompressTimed(method, bundle.data);
    const auto size = method.summary().Size();
    const size_t points = method.summary().TotalPoints();
    std::printf("%8.1f %10.2f %10.2f %8.2f %10.1f\n", gs_m,
                method.LocalSearchRadius() * kMetersPerDegree,
                core::SummaryMaeMeters(method, bundle.data),
                core::CompressionRatio(method, bundle.data),
                points == 0 ? 0.0
                            : 8.0 * static_cast<double>(size.cqc_bytes) /
                                  static_cast<double>(points));
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  BenchOptions options = ParseArgs(argc, argv);
  if (options.scale == 1.0) options.scale = 0.5;  // ablations run lighter
  const DatasetBundle porto = MakePortoBundle(options);
  GrowthPolicyAblation(porto);
  AutocorrFeatureAblation(porto);
  MergeAblation(porto);
  PredictionOrderAblation(porto);
  CqcGridAblation(porto);
  return 0;
}
