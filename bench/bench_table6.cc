/// \file bench_table6.cc
/// Reproduces Table 6: number of codewords in the codebook C against the
/// target spatial deviation (200-1000 m), same regime as Table 5. The
/// paper's headline: PPQ needs an order of magnitude fewer codewords than
/// the raw-position quantizers, and TrajStore needs the most.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle) {
  std::printf("\n=== Table 6 (%s): codewords in C vs spatial deviation "
              "(m) ===\n",
              bundle.name.c_str());
  std::printf("%-24s %9s %9s %9s %9s %9s\n", "Method", "200", "400", "600",
              "800", "1000");

  for (const std::string& name : AllMethodNames()) {
    const bool cqc = (name == "PPQ-A" || name == "PPQ-S");
    std::printf("%-24s", name.c_str());
    double total_seconds = 0.0;
    size_t total_points = 0;
    for (double deviation : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
      MethodSetup setup = DeviationSetup(deviation, cqc);
      setup.enable_index = false;
      auto method = MakeCompressor(name, bundle, setup);
      WallTimer timer;
      method->Compress(bundle.data);
      total_seconds += timer.ElapsedSeconds();
      total_points += bundle.data.TotalPoints();
      std::printf(" %9zu", method->NumCodewords());
      std::fflush(stdout);
    }
    std::printf("\n");
    PrintThroughput(name, "encode", total_points, total_seconds);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options));
  RunDataset(MakeGeoLifeBundle(options));
  return 0;
}
