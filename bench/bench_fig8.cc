/// \file bench_fig8.cc
/// Reproduces Figure 8: the number of partitions q maintained by the
/// incremental partitioner over time, for different eps_p values — the
/// series grow while new motion regimes appear and then stabilise.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/ppq_trajectory.h"

namespace ppq::bench {
namespace {

void RunSeries(const DatasetBundle& bundle, const std::string& method,
               const std::vector<double>& eps_values) {
  std::printf("\n--- Figure 8: q over time, %s on %s ---\n", method.c_str(),
              bundle.name.c_str());
  // Collect one q-series per eps value.
  std::vector<std::vector<int>> series;
  for (double eps : eps_values) {
    MethodSetup setup;
    setup.mode = core::QuantizationMode::kErrorBounded;
    setup.enable_index = false;
    auto compressor = MakeCompressor(method, bundle, setup);
    auto* ppq = static_cast<core::PpqTrajectory*>(compressor.get());
    core::PpqOptions options = ppq->options();
    options.epsilon_p = eps;
    core::PpqTrajectory tuned(options);
    CompressTimed(tuned, bundle.data);
    std::vector<int> q;
    for (const auto& stats : tuned.tick_stats()) q.push_back(stats.partitions);
    series.push_back(std::move(q));
  }

  std::printf("%8s", "t");
  for (double eps : eps_values) std::printf("  q(eps=%-5g)", eps);
  std::printf("\n");
  const size_t ticks = series.empty() ? 0 : series[0].size();
  const size_t step = std::max<size_t>(1, ticks / 20);
  int peak = 0;
  for (size_t t = 0; t < ticks; t += step) {
    std::printf("%8zu", t);
    for (const auto& q : series) {
      std::printf("  %11d", t < q.size() ? q[t] : 0);
      if (t < q.size()) peak = std::max(peak, q[t]);
    }
    std::printf("\n");
  }
  std::printf("(peak q across sweep: %d)\n", peak);
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const DatasetBundle porto = MakePortoBundle(options);
  const DatasetBundle geolife = MakeGeoLifeBundle(options);

  RunSeries(porto, "PPQ-A", {0.1, 0.2, 0.4});
  RunSeries(geolife, "PPQ-A", {0.1, 0.2, 0.4});
  RunSeries(porto, "PPQ-S", {0.01, 0.03, 0.05});
  RunSeries(geolife, "PPQ-S", {0.5, 1.0, 2.0});
  return 0;
}
