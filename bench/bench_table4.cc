/// \file bench_table4.cc
/// Reproduces Table 4: average ratio of trajectories visited (the
/// filtering power of the summary used as an index for exact-match
/// queries) and MAE, against codebook sizes of 5-9 bits. TrajStore is
/// excluded, as in the paper, because its per-cell summaries cannot be
/// fixed to a per-timestamp codeword budget.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_engine.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle, const BenchOptions& options) {
  std::printf("\n=== Table 4 (%s): visit ratio (x1e-3) and MAE (m) vs "
              "codebook bits ===\n",
              bundle.name.c_str());
  std::printf("%-24s %9s %9s %9s %9s %9s\n", "Method", "5 bits", "6 bits",
              "7 bits", "8 bits", "9 bits");

  Rng rng(options.seed + 21);
  const auto queries =
      core::SampleQueries(bundle.data, options.queries, &rng);

  for (const std::string& name : FilteringMethodNames()) {
    std::vector<double> ratios;
    std::vector<double> maes;
    for (int bits : {5, 6, 7, 8, 9}) {
      MethodSetup setup;
      setup.mode = core::QuantizationMode::kFixedPerTick;
      setup.fixed_bits = bits;
      auto method = MakeCompressor(name, bundle, setup);
      CompressTimed(*method, bundle.data);
      core::QueryEngine engine(method.get(), &bundle.data,
                               100.0 / kMetersPerDegree);
      WallTimer serve_timer;
      const auto eval = core::EvaluateStrq(engine, bundle.data, queries,
                                           core::StrqMode::kExact);
      PrintThroughput(name, "serve", queries.size(),
                      serve_timer.ElapsedSeconds());
      ratios.push_back(eval.visit_ratio * 1e3);
      maes.push_back(core::SummaryMaeMeters(*method, bundle.data));
    }
    std::printf("%-24s", name.c_str());
    for (double r : ratios) std::printf(" %9.3f", r);
    std::printf("  (ratio x1e-3)\n");
    std::printf("%-24s", "");
    for (double m : maes) std::printf(" %9.2f", m);
    std::printf("  (MAE m)\n");
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options), options);
  RunDataset(MakeGeoLifeBundle(options), options);
  return 0;
}
