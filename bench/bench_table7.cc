/// \file bench_table7.cc
/// Reproduces Table 7: TPI statistics against the TRD dropping-rate
/// threshold eps_c — index size, build time, number of temporal periods,
/// and number of Insertion operations. Higher eps_c tolerates bigger
/// density drops before a region counts toward ADR, so periods get longer
/// and fewer.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "index/temporal_index.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle) {
  std::printf("\n=== Table 7 (%s): TPI statistics vs eps_c (eps_d = 0.5) "
              "===\n",
              bundle.name.c_str());
  std::printf("%6s %12s %10s %10s %12s\n", "eps_c", "Size(MB)", "Time(s)",
              "Periods", "Insertions");

  for (double eps_c : {0.2, 0.4, 0.6, 0.8}) {
    index::TemporalPartitionIndex::Options options;
    options.pi.epsilon_s = bundle.eps_s;
    options.pi.cell_size = 100.0 / kMetersPerDegree;
    options.epsilon_c = eps_c;
    options.epsilon_d = 0.5;
    index::TemporalPartitionIndex tpi(options);

    WallTimer timer;
    const Tick lo = bundle.data.MinTick();
    const Tick hi = bundle.data.MaxTick();
    for (Tick t = lo; t < hi; ++t) {
      const TimeSlice slice = bundle.data.SliceAt(t);
      if (!slice.empty()) tpi.Observe(slice);
    }
    tpi.Finalize();
    const double seconds = timer.ElapsedSeconds();

    std::printf("%6.1f %12.3f %10.2f %10zu %12zu\n", eps_c,
                static_cast<double>(tpi.SizeBytes()) / (1024.0 * 1024.0),
                seconds, tpi.stats().num_periods, tpi.stats().num_insertions);
    PrintThroughput("TPI", "encode", tpi.stats().points_indexed, seconds);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options));
  RunDataset(MakeGeoLifeBundle(options));
  return 0;
}
