/// \file bench_serve.cc
/// Concurrent serving benchmark for the async serving stack, two modes:
///
/// Default (batch ladder): compress a Porto-like workload with PPQ-A,
/// Seal() it, and measure queries/sec of batched QueryService submission
/// over a mixed STRQ / window / k-NN workload at 1/2/4/8 workers (or a
/// single count with --threads=N). Before timing, every batch result is
/// checked byte-identical against the serial QueryEngine. Output ends
/// with one [serve] line per thread count:
///   [serve] threads=4 queries=3500 seconds=0.81 qps=4321 speedup=2.73
///
/// --mixed (request stream): the production shape — N submitter threads
/// (--submitters=N, default 4) drive one futures-based QueryService with
/// an interleaved STRQ / window / k-NN / TPQ stream (closed loop: each
/// submitter keeps one request in flight), every response is
/// parity-checked against the serial engine, and per-request latency is
/// recorded from submission to future resolution — reported both per
/// request kind and aggregated over the whole stream:
///   [mixed] threads=4 submitters=4 requests=1750 seconds=0.42 qps=4123
///           identical=yes
///   [latency] kind=strq requests=700 p50_us=640 p95_us=1800 p99_us=2600
///             max_us=4100
///   ... (one line per kind: strq, window, knn, tpq) ...
///   [latency] p50_us=812 p95_us=2100 p99_us=3400 max_us=5120
///
/// Both modes emit the shared [throughput] lines (phase=serve) for the
/// perf trail and exit non-zero if any result diverges from the serial
/// engine. --json=<path> additionally writes the run's records (ladder
/// rungs, or the mixed qps + per-kind/aggregate latency percentiles) as
/// a BENCH_serve.json via bench::PerfJson.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_backend.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppq::bench {
namespace {

struct Workload {
  std::vector<core::QuerySpec> strq;
  std::vector<core::WindowSpec> windows;
  std::vector<core::QuerySpec> knn;

  size_t Total() const { return strq.size() + windows.size() + knn.size(); }
};

Workload MakeWorkload(const TrajectoryDataset& data, size_t queries,
                      uint64_t seed) {
  Workload w;
  Rng rng(seed);
  w.strq = core::SampleQueries(data, queries, &rng);
  for (const core::QuerySpec& q : core::SampleQueries(data, queries / 2,
                                                      &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    w.windows.push_back({core::Window{q.position.x - half,
                                      q.position.y - half,
                                      q.position.x + half,
                                      q.position.y + half},
                         q.tick});
  }
  w.knn = core::SampleQueries(data, queries / 4, &rng);
  return w;
}

struct MixedResults {
  std::vector<core::StrqResult> strq_exact;
  std::vector<core::StrqResult> strq_local;
  std::vector<core::StrqResult> windows;
  std::vector<std::vector<core::Neighbor>> knn;

  bool operator==(const MixedResults& o) const {
    return strq_exact == o.strq_exact && strq_local == o.strq_local &&
           windows == o.windows && knn == o.knn;
  }
};

constexpr size_t kKnnK = 8;
constexpr int kTpqLength = 8;

MixedResults RunSerial(const core::QueryEngine& engine, const Workload& w) {
  MixedResults r;
  for (const auto& q : w.strq) {
    r.strq_exact.push_back(engine.Strq(q, core::StrqMode::kExact));
    r.strq_local.push_back(engine.Strq(q, core::StrqMode::kLocalSearch));
  }
  for (const auto& win : w.windows) {
    r.windows.push_back(
        engine.WindowQuery(win.window, win.tick, core::StrqMode::kExact));
  }
  for (const auto& q : w.knn) {
    r.knn.push_back(engine.NearestTrajectories(q, kKnnK));
  }
  return r;
}

MixedResults RunService(core::QueryBackend& service, const Workload& w) {
  std::vector<core::QueryRequest> requests;
  requests.reserve(2 * w.strq.size() + w.windows.size() + w.knn.size());
  for (const auto& q : w.strq) {
    requests.push_back(core::StrqRequest{q, core::StrqMode::kExact});
  }
  for (const auto& q : w.strq) {
    requests.push_back(core::StrqRequest{q, core::StrqMode::kLocalSearch});
  }
  for (const auto& win : w.windows) {
    requests.push_back(core::WindowRequest{win, core::StrqMode::kExact});
  }
  for (const auto& q : w.knn) requests.push_back(core::KnnRequest{q, kKnnK});

  auto futures = service.SubmitBatch(std::move(requests));
  MixedResults r;
  size_t i = 0;
  for (size_t n = 0; n < w.strq.size(); ++n) {
    r.strq_exact.push_back(
        std::move(std::get<core::StrqResult>(futures[i++].get().result)));
  }
  for (size_t n = 0; n < w.strq.size(); ++n) {
    r.strq_local.push_back(
        std::move(std::get<core::StrqResult>(futures[i++].get().result)));
  }
  for (size_t n = 0; n < w.windows.size(); ++n) {
    r.windows.push_back(
        std::move(std::get<core::StrqResult>(futures[i++].get().result)));
  }
  for (size_t n = 0; n < w.knn.size(); ++n) {
    r.knn.push_back(std::move(
        std::get<std::vector<core::Neighbor>>(futures[i++].get().result)));
  }
  return r;
}

/// One serving pass: queries evaluated per timed run (exact+local STRQ
/// count as two evaluations per spec).
size_t EvaluationsPerPass(const Workload& w) {
  return 2 * w.strq.size() + w.windows.size() + w.knn.size();
}

// ---------------------------------------------------------------------------
// --mixed: interleaved request stream against the QueryService
// ---------------------------------------------------------------------------

/// The response payload variant, shared by the service and the serial
/// reference so parity is one == per request.
using Payload =
    std::variant<core::StrqResult, std::vector<core::Neighbor>,
                 core::TpqResult>;

/// All four request kinds interleaved into one deterministic stream.
std::vector<core::QueryRequest> MakeMixedStream(const TrajectoryDataset& data,
                                                size_t queries,
                                                uint64_t seed) {
  std::vector<core::QueryRequest> stream;
  Rng rng(seed);
  for (const auto& q : core::SampleQueries(data, queries / 2, &rng)) {
    stream.push_back(core::StrqRequest{q, core::StrqMode::kExact});
  }
  for (const auto& q : core::SampleQueries(data, queries / 2, &rng)) {
    stream.push_back(core::StrqRequest{q, core::StrqMode::kLocalSearch});
  }
  for (const auto& q : core::SampleQueries(data, queries / 2, &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    stream.push_back(core::WindowRequest{
        {core::Window{q.position.x - half, q.position.y - half,
                      q.position.x + half, q.position.y + half},
         q.tick},
        core::StrqMode::kExact});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    stream.push_back(core::KnnRequest{q, kKnnK});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    stream.push_back(core::TpqRequest{q, kTpqLength, core::StrqMode::kExact});
  }
  std::shuffle(stream.begin(), stream.end(), rng.engine());
  return stream;
}

Payload EvalSerial(const core::QueryEngine& engine,
                   const core::QueryRequest& request) {
  if (const auto* r = std::get_if<core::StrqRequest>(&request)) {
    return engine.Strq(r->query, r->mode);
  }
  if (const auto* r = std::get_if<core::WindowRequest>(&request)) {
    return engine.WindowQuery(r->window.window, r->window.tick, r->mode);
  }
  if (const auto* r = std::get_if<core::KnnRequest>(&request)) {
    return engine.NearestTrajectories(r->query, r->k);
  }
  const auto& r = std::get<core::TpqRequest>(request);
  return engine.Tpq(r.query, r.length, r.mode);
}

int RunMixed(const BenchOptions& options, size_t submitters,
             const std::string& json_path, const std::string& trace_path) {
  std::printf("=== bench_serve --mixed: async QueryService, %zu submitter "
              "thread(s) ===\n", submitters);
  DatasetBundle bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle.name.c_str(), bundle.data.size(),
              bundle.data.TotalPoints());

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  auto method = MakeCompressor("PPQ-A", bundle, setup);
  CompressTimed(*method, bundle.data);
  const core::SnapshotPtr snapshot = method->Seal();

  const double cell_size = 100.0 / kMetersPerDegree;
  const std::vector<core::QueryRequest> stream =
      MakeMixedStream(bundle.data, options.queries, options.seed + 99);
  std::printf("stream: %zu interleaved requests (STRQ exact+local, window, "
              "kNN, TPQ)\n", stream.size());

  // The dataset moves into shared ownership (no copy): the serial
  // reference engine and the service verify against the same object.
  const auto raw = std::make_shared<const TrajectoryDataset>(
      std::move(bundle.data));

  // Serial reference for every request, and the serial-serving baseline.
  const core::QueryEngine engine(method.get(), raw.get(), cell_size);
  std::vector<Payload> reference;
  reference.reserve(stream.size());
  WallTimer serial_timer;
  for (const core::QueryRequest& request : stream) {
    reference.push_back(EvalSerial(engine, request));
  }
  PrintThroughput("QueryEngine", "serve", stream.size(),
                  serial_timer.ElapsedSeconds());

  const size_t threads = options.threads == 0 ? 4 : options.threads;
  core::QueryService::Options serve_options;
  serve_options.num_threads = threads;
  serve_options.raw = raw;
  serve_options.cell_size = cell_size;
  core::QueryService service(snapshot, serve_options);

  // Closed-loop submitters: thread s owns request indices s, s+S, s+2S...
  // and keeps exactly one in flight, so concurrency = #submitters and the
  // recorded latency spans submission -> future resolution. Latency is
  // recorded with the request's kind so the stream decomposes into
  // per-kind distributions (a slow tail can hide entirely inside one
  // request kind of a mixed stream).
  std::vector<Payload> served(stream.size());
  // Per-request stage breakdown (submitters own disjoint indices, so the
  // writes need no lock) — the same numbers the dispatcher feeds the
  // metrics registry, kept per-request here so [stages] percentiles come
  // from exact samples rather than histogram buckets.
  std::vector<core::QueryStats> stats(stream.size());
  std::vector<std::vector<std::pair<core::QueryKind, uint64_t>>> latencies(
      submitters);
  WallTimer stream_timer;
  std::vector<std::thread> threads_vec;
  threads_vec.reserve(submitters);
  for (size_t s = 0; s < submitters; ++s) {
    threads_vec.emplace_back([&, s] {
      for (size_t i = s; i < stream.size(); i += submitters) {
        const auto start = std::chrono::steady_clock::now();
        core::QueryResponse response = service.Submit(stream[i]).get();
        latencies[s].emplace_back(
            core::KindOf(stream[i]),
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
        stats[i] = response.stats;
        served[i] = std::move(response.result);
      }
    });
  }
  for (std::thread& t : threads_vec) t.join();
  const double seconds = stream_timer.ElapsedSeconds();

  bool identical = true;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!(served[i] == reference[i])) {
      identical = false;
      break;
    }
  }

  // Percentiles over a sorted sample (nearest-rank with rounding).
  const auto percentile = [](const std::vector<uint64_t>& sorted,
                             double p) -> uint64_t {
    if (sorted.empty()) return 0;
    const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  };

  std::vector<uint64_t> all;
  std::vector<uint64_t> by_kind[4];
  for (const auto& per_thread : latencies) {
    for (const auto& [kind, us] : per_thread) {
      all.push_back(us);
      by_kind[static_cast<size_t>(kind)].push_back(us);
    }
  }
  std::sort(all.begin(), all.end());

  const double qps =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  PrintThroughput("QueryService/" + std::to_string(threads) + "t", "serve",
                  stream.size(), seconds);
  std::printf("[mixed] threads=%zu submitters=%zu requests=%zu "
              "seconds=%.4f qps=%.0f identical=%s\n",
              threads, submitters, stream.size(), seconds, qps,
              identical ? "yes" : "NO");

  PerfJson json;
  json.Begin("mixed");
  json.Field("threads", static_cast<double>(threads));
  json.Field("submitters", static_cast<double>(submitters));
  json.Field("requests", static_cast<double>(stream.size()));
  json.Field("seconds", seconds);
  json.Field("qps", qps);
  json.Text("identical", identical ? "yes" : "no");

  // Per-kind breakdown first, aggregate last (tools keyed on the bare
  // "[latency] p50_us=" line keep parsing the same final line).
  const auto latency_record = [&](const std::string& name,
                                  const std::vector<uint64_t>& sorted) {
    json.Begin(name);
    json.Field("requests", static_cast<double>(sorted.size()));
    json.Field("p50_us", static_cast<double>(percentile(sorted, 0.50)));
    json.Field("p95_us", static_cast<double>(percentile(sorted, 0.95)));
    json.Field("p99_us", static_cast<double>(percentile(sorted, 0.99)));
    json.Field("max_us",
               static_cast<double>(sorted.empty() ? 0 : sorted.back()));
  };
  constexpr const char* kKindNames[4] = {"strq", "window", "knn", "tpq"};
  for (size_t kind = 0; kind < 4; ++kind) {
    std::vector<uint64_t>& sample = by_kind[kind];
    if (sample.empty()) continue;
    std::sort(sample.begin(), sample.end());
    std::printf("[latency] kind=%s requests=%zu p50_us=%llu p95_us=%llu "
                "p99_us=%llu max_us=%llu\n",
                kKindNames[kind], sample.size(),
                static_cast<unsigned long long>(percentile(sample, 0.50)),
                static_cast<unsigned long long>(percentile(sample, 0.95)),
                static_cast<unsigned long long>(percentile(sample, 0.99)),
                static_cast<unsigned long long>(sample.back()));
    latency_record(std::string("latency_") + kKindNames[kind], sample);
  }
  std::printf("[latency] p50_us=%llu p95_us=%llu p99_us=%llu max_us=%llu\n",
              static_cast<unsigned long long>(percentile(all, 0.50)),
              static_cast<unsigned long long>(percentile(all, 0.95)),
              static_cast<unsigned long long>(percentile(all, 0.99)),
              static_cast<unsigned long long>(all.empty() ? 0 : all.back()));
  latency_record("latency", all);

  // Per-stage breakdown from the exact per-response QueryStats — the same
  // numbers ObserveServeStages feeds the registry, but per-request samples
  // so percentiles are exact. The stage accounting is cross-checked
  // against the wall-clock [latency] sample: queue + evaluation can never
  // exceed the observed submission->resolution time, and the evaluator's
  // substages (scan/decode/kernel/tail/merge) can never exceed the
  // whole-evaluation time. Every recorded duration truncates down by
  // < 1us, so the check allows a few microseconds per request plus 2%.
  uint64_t wall_sum = 0;
  for (uint64_t us : all) wall_sum += us;
  uint64_t queue_sum = 0;
  uint64_t eval_sum = 0;
  uint64_t substage_sum = 0;
  std::array<std::vector<uint64_t>, core::kNumServeStages> stage_samples;
  std::array<uint64_t, core::kNumServeStages> stage_sums{};
  for (const core::QueryStats& s : stats) {
    queue_sum += s.queue_micros;
    eval_sum += s.eval_micros;
    for (size_t st = 0; st < core::kNumServeStages; ++st) {
      stage_samples[st].push_back(s.stage_micros[st]);
      stage_sums[st] += s.stage_micros[st];
      if (st != static_cast<size_t>(core::ServeStage::kQueue)) {
        substage_sum += s.stage_micros[st];
      }
    }
  }
  const uint64_t slack = 3 * stream.size() + wall_sum / 50;
  const bool consistent = queue_sum + eval_sum <= wall_sum + slack &&
                          substage_sum <= eval_sum + slack;
  for (size_t st = 0; st < core::kNumServeStages; ++st) {
    std::vector<uint64_t>& sample = stage_samples[st];
    std::sort(sample.begin(), sample.end());
    const double share =
        wall_sum > 0 ? static_cast<double>(stage_sums[st]) / wall_sum : 0.0;
    std::printf("[stage] name=%s requests=%zu p50_us=%llu p95_us=%llu "
                "p99_us=%llu max_us=%llu sum_us=%llu share=%.3f\n",
                core::kServeStageNames[st], sample.size(),
                static_cast<unsigned long long>(percentile(sample, 0.50)),
                static_cast<unsigned long long>(percentile(sample, 0.95)),
                static_cast<unsigned long long>(percentile(sample, 0.99)),
                static_cast<unsigned long long>(sample.empty() ? 0
                                                               : sample.back()),
                static_cast<unsigned long long>(stage_sums[st]), share);
    json.Begin(std::string("stage_") + core::kServeStageNames[st]);
    json.Field("requests", static_cast<double>(sample.size()));
    json.Field("p50_us", static_cast<double>(percentile(sample, 0.50)));
    json.Field("p95_us", static_cast<double>(percentile(sample, 0.95)));
    json.Field("p99_us", static_cast<double>(percentile(sample, 0.99)));
    json.Field("max_us",
               static_cast<double>(sample.empty() ? 0 : sample.back()));
    json.Field("sum_us", static_cast<double>(stage_sums[st]));
    json.Field("share", share);
  }
  std::printf("[stages] requests=%zu queue_sum_us=%llu eval_sum_us=%llu "
              "substage_sum_us=%llu wall_sum_us=%llu consistent=%s\n",
              stream.size(), static_cast<unsigned long long>(queue_sum),
              static_cast<unsigned long long>(eval_sum),
              static_cast<unsigned long long>(substage_sum),
              static_cast<unsigned long long>(wall_sum),
              consistent ? "yes" : "NO");
  json.Begin("stages");
  json.Field("requests", static_cast<double>(stream.size()));
  json.Field("queue_sum_us", static_cast<double>(queue_sum));
  json.Field("eval_sum_us", static_cast<double>(eval_sum));
  json.Field("substage_sum_us", static_cast<double>(substage_sum));
  json.Field("wall_sum_us", static_cast<double>(wall_sum));
  json.Text("consistent", consistent ? "yes" : "no");

  // The whole run's registry snapshot, embedded verbatim: histograms here
  // aggregate what the per-request samples above show exactly.
  json.Begin("metrics");
  json.Raw("registry", obs::Registry::Default().RenderJson());

  if (!trace_path.empty()) {
    if (!obs::trace::WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "bench_serve: could not write trace %s\n",
                   trace_path.c_str());
      return 2;
    }
    std::printf("[trace] events=%zu path=%s\n",
                obs::trace::BufferedEventCount(), trace_path.c_str());
  }

  if (!json_path.empty() && !json.Write(json_path, "serve")) {
    std::fprintf(stderr, "bench_serve: could not write %s\n",
                 json_path.c_str());
    return 2;
  }
  if (!identical) {
    std::printf("ERROR: service responses diverged from the serial "
                "engine\n");
    return 1;
  }
  if (!consistent) {
    std::printf("ERROR: stage accounting is inconsistent with the "
                "wall-clock latency sample\n");
    return 1;
  }
  return 0;
}

int Run(const BenchOptions& options, const std::string& json_path) {
  std::printf("=== bench_serve: snapshot + batched QueryService ladder ===\n");
  DatasetBundle bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle.name.c_str(), bundle.data.size(),
              bundle.data.TotalPoints());

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  auto method = MakeCompressor("PPQ-A", bundle, setup);
  CompressTimed(*method, bundle.data);

  WallTimer seal_timer;
  const core::SnapshotPtr snapshot = method->Seal();
  std::printf("seal: %.1f KB summary, %zu trajectories, %.3f ms\n",
              static_cast<double>(snapshot->SummaryBytes()) / 1024.0,
              snapshot->NumTrajectories(), seal_timer.ElapsedMillis());

  const double cell_size = 100.0 / kMetersPerDegree;
  const Workload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 99);
  const size_t evaluations = EvaluationsPerPass(workload);
  std::printf("workload: %zu STRQ (exact+local) + %zu window + %zu kNN "
              "= %zu evaluations/pass\n",
              workload.strq.size(), workload.windows.size(),
              workload.knn.size(), evaluations);

  // The dataset moves into shared ownership (no copy) for the serving
  // stack; the serial engine verifies against the same object.
  const auto raw = std::make_shared<const TrajectoryDataset>(
      std::move(bundle.data));

  // Serial reference: the single-query engine, timed the same way.
  const core::QueryEngine engine(method.get(), raw.get(), cell_size);
  WallTimer serial_timer;
  const MixedResults reference = RunSerial(engine, workload);
  const double serial_seconds = serial_timer.ElapsedSeconds();
  const double serial_qps =
      serial_seconds > 0.0
          ? static_cast<double>(evaluations) / serial_seconds
          : 0.0;
  PrintThroughput("QueryEngine", "serve", evaluations, serial_seconds);

  std::vector<size_t> ladder = {1, 2, 4, 8};
  if (options.threads > 0) ladder = {options.threads};

  bool all_identical = true;
  double qps_at_1 = 0.0;
  PerfJson json;
  for (size_t threads : ladder) {
    core::QueryService::Options serve_options;
    serve_options.num_threads = threads;
    serve_options.raw = raw;
    serve_options.cell_size = cell_size;
    core::QueryService service(snapshot, serve_options);

    // Correctness pass (also warms per-worker decode scratch the same way
    // every thread count warms it: by running the workload once).
    const MixedResults check = RunService(service, workload);
    const bool identical = check == reference;
    all_identical = all_identical && identical;

    WallTimer timer;
    const MixedResults timed = RunService(service, workload);
    const double seconds = timer.ElapsedSeconds();
    all_identical = all_identical && (timed == reference);

    const double qps =
        seconds > 0.0 ? static_cast<double>(evaluations) / seconds : 0.0;
    if (threads == 1) qps_at_1 = qps;
    // Speedup vs the 1-worker service when the ladder includes it;
    // otherwise (explicit --threads=N) vs the serial engine.
    const double baseline = qps_at_1 > 0.0 ? qps_at_1 : serial_qps;
    const double speedup = baseline > 0.0 ? qps / baseline : 0.0;
    const std::string label =
        "QueryService/" + std::to_string(threads) + "t";
    PrintThroughput(label, "serve", evaluations, seconds);
    std::printf("[serve] threads=%zu queries=%zu seconds=%.4f qps=%.0f "
                "speedup=%.2f identical=%s\n",
                threads, evaluations, seconds, qps, speedup,
                identical ? "yes" : "NO");
    json.Begin("serve_" + std::to_string(threads) + "t");
    json.Field("threads", static_cast<double>(threads));
    json.Field("queries", static_cast<double>(evaluations));
    json.Field("seconds", seconds);
    json.Field("qps", qps);
    json.Field("speedup", speedup);
    json.Text("identical", identical ? "yes" : "no");
  }

  if (!json_path.empty() && !json.Write(json_path, "serve")) {
    std::fprintf(stderr, "bench_serve: could not write %s\n",
                 json_path.c_str());
    return 2;
  }
  if (!all_identical) {
    std::printf("ERROR: service results diverged from the serial engine\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  ppq::bench::BenchOptions options = ppq::bench::ParseArgs(argc, argv);
  const std::string json_path = ppq::bench::ParseJsonPath(argc, argv);
  bool threads_given = false;
  bool mixed = false;
  size_t submitters = 4;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) threads_given = true;
    if (arg == "--mixed") mixed = true;
    if (arg.rfind("--submitters=", 0) == 0) {
      submitters = static_cast<size_t>(
          std::strtoull(arg.substr(13).c_str(), nullptr, 10));
      if (submitters == 0) submitters = 1;
    }
    // Drain the zone-trace rings to a chrome://tracing JSON after the
    // run. Zones only record in a -DPPQ_TRACE=ON build; the default
    // build writes a valid empty trace.
    if (arg.rfind("--trace-out=", 0) == 0) trace_path = arg.substr(12);
  }
  if (mixed) {
    // --mixed serves with --threads workers (default 4), driven by
    // --submitters caller threads.
    if (!threads_given) options.threads = 0;
    return ppq::bench::RunMixed(options, submitters, json_path, trace_path);
  }
  // The batch ladder sweeps 1/2/4/8 threads by default.
  if (!threads_given) options.threads = 0;
  return ppq::bench::Run(options, json_path);
}
