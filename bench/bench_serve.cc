/// \file bench_serve.cc
/// Concurrent serving benchmark for the writer/reader split: compress a
/// Porto-like workload with PPQ-A, Seal() it into an immutable
/// SummarySnapshot, and measure queries/sec of the batched QueryExecutor
/// over a mixed STRQ / window / k-NN workload at 1/2/4/8 threads
/// (or a single count with --threads=N). Before timing, every batch
/// result is checked byte-identical against the serial QueryEngine — the
/// speedup is only worth reporting if the answers are exactly the same.
///
/// Output ends with one [serve] line per thread count:
///   [serve] threads=4 queries=3500 seconds=0.81 qps=4321 speedup=2.73
/// plus the shared [throughput] lines (phase=serve) for the perf trail.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_engine.h"
#include "core/query_executor.h"

namespace ppq::bench {
namespace {

struct Workload {
  std::vector<core::QuerySpec> strq;
  std::vector<core::WindowSpec> windows;
  std::vector<core::QuerySpec> knn;

  size_t Total() const { return strq.size() + windows.size() + knn.size(); }
};

Workload MakeWorkload(const TrajectoryDataset& data, size_t queries,
                      uint64_t seed) {
  Workload w;
  Rng rng(seed);
  w.strq = core::SampleQueries(data, queries, &rng);
  for (const core::QuerySpec& q : core::SampleQueries(data, queries / 2,
                                                      &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    w.windows.push_back({core::Window{q.position.x - half,
                                      q.position.y - half,
                                      q.position.x + half,
                                      q.position.y + half},
                         q.tick});
  }
  w.knn = core::SampleQueries(data, queries / 4, &rng);
  return w;
}

struct MixedResults {
  std::vector<core::StrqResult> strq_exact;
  std::vector<core::StrqResult> strq_local;
  std::vector<core::StrqResult> windows;
  std::vector<std::vector<core::Neighbor>> knn;

  bool operator==(const MixedResults& o) const {
    return strq_exact == o.strq_exact && strq_local == o.strq_local &&
           windows == o.windows && knn == o.knn;
  }
};

constexpr size_t kKnnK = 8;

MixedResults RunSerial(const core::QueryEngine& engine, const Workload& w) {
  MixedResults r;
  for (const auto& q : w.strq) {
    r.strq_exact.push_back(engine.Strq(q, core::StrqMode::kExact));
    r.strq_local.push_back(engine.Strq(q, core::StrqMode::kLocalSearch));
  }
  for (const auto& win : w.windows) {
    r.windows.push_back(
        engine.WindowQuery(win.window, win.tick, core::StrqMode::kExact));
  }
  for (const auto& q : w.knn) {
    r.knn.push_back(engine.NearestTrajectories(q, kKnnK));
  }
  return r;
}

MixedResults RunExecutor(core::QueryExecutor& executor, const Workload& w) {
  MixedResults r;
  r.strq_exact = executor.StrqBatch(w.strq, core::StrqMode::kExact);
  r.strq_local = executor.StrqBatch(w.strq, core::StrqMode::kLocalSearch);
  r.windows = executor.WindowBatch(w.windows, core::StrqMode::kExact);
  r.knn = executor.KnnBatch(w.knn, kKnnK);
  return r;
}

/// One serving pass: queries evaluated per timed run (exact+local STRQ
/// count as two evaluations per spec).
size_t EvaluationsPerPass(const Workload& w) {
  return 2 * w.strq.size() + w.windows.size() + w.knn.size();
}

int Run(const BenchOptions& options) {
  std::printf("=== bench_serve: snapshot + concurrent batched executor ===\n");
  const DatasetBundle bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle.name.c_str(), bundle.data.size(),
              bundle.data.TotalPoints());

  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  auto method = MakeCompressor("PPQ-A", bundle, setup);
  CompressTimed(*method, bundle.data);

  WallTimer seal_timer;
  const core::SnapshotPtr snapshot = method->Seal();
  std::printf("seal: %.1f KB summary, %zu trajectories, %.3f ms\n",
              static_cast<double>(snapshot->SummaryBytes()) / 1024.0,
              snapshot->NumTrajectories(), seal_timer.ElapsedMillis());

  const double cell_size = 100.0 / kMetersPerDegree;
  const Workload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 99);
  const size_t evaluations = EvaluationsPerPass(workload);
  std::printf("workload: %zu STRQ (exact+local) + %zu window + %zu kNN "
              "= %zu evaluations/pass\n",
              workload.strq.size(), workload.windows.size(),
              workload.knn.size(), evaluations);

  // Serial reference: the single-query engine, timed the same way.
  const core::QueryEngine engine(method.get(), &bundle.data, cell_size);
  WallTimer serial_timer;
  const MixedResults reference = RunSerial(engine, workload);
  const double serial_seconds = serial_timer.ElapsedSeconds();
  const double serial_qps =
      serial_seconds > 0.0
          ? static_cast<double>(evaluations) / serial_seconds
          : 0.0;
  PrintThroughput("QueryEngine", "serve", evaluations, serial_seconds);

  std::vector<size_t> ladder = {1, 2, 4, 8};
  if (options.threads > 0) ladder = {options.threads};

  bool all_identical = true;
  double qps_at_1 = 0.0;
  for (size_t threads : ladder) {
    core::QueryExecutor::Options exec_options;
    exec_options.num_threads = threads;
    exec_options.raw = &bundle.data;
    exec_options.cell_size = cell_size;
    core::QueryExecutor executor(snapshot, exec_options);

    // Correctness pass (also warms per-worker decode scratch the same way
    // every thread count warms it: by running the workload once).
    const MixedResults check = RunExecutor(executor, workload);
    const bool identical = check == reference;
    all_identical = all_identical && identical;

    WallTimer timer;
    const MixedResults timed = RunExecutor(executor, workload);
    const double seconds = timer.ElapsedSeconds();
    all_identical = all_identical && (timed == reference);

    const double qps =
        seconds > 0.0 ? static_cast<double>(evaluations) / seconds : 0.0;
    if (threads == 1) qps_at_1 = qps;
    // Speedup vs the 1-thread executor when the ladder includes it;
    // otherwise (explicit --threads=N) vs the serial engine.
    const double baseline = qps_at_1 > 0.0 ? qps_at_1 : serial_qps;
    const double speedup = baseline > 0.0 ? qps / baseline : 0.0;
    const std::string label =
        "QueryExecutor/" + std::to_string(threads) + "t";
    PrintThroughput(label, "serve", evaluations, seconds);
    std::printf("[serve] threads=%zu queries=%zu seconds=%.4f qps=%.0f "
                "speedup=%.2f identical=%s\n",
                threads, evaluations, seconds, qps, speedup,
                identical ? "yes" : "NO");
  }

  if (!all_identical) {
    std::printf("ERROR: executor results diverged from the serial engine\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  ppq::bench::BenchOptions options = ppq::bench::ParseArgs(argc, argv);
  // bench_serve sweeps the thread ladder by default.
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--threads=", 0) == 0) {
      threads_given = true;
    }
  }
  if (!threads_given) options.threads = 0;
  return ppq::bench::Run(options);
}
