#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/product_quantization.h"
#include "baselines/residual_quantization.h"
#include "baselines/trajstore.h"
#include "common/geo.h"
#include "common/timer.h"

namespace ppq::bench {
namespace {

index::Rect ToRect(const BoundingBox& box) {
  return index::Rect{box.min_x, box.min_y, box.max_x, box.max_y};
}

}  // namespace

BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    double value = 0.0;
    if (std::sscanf(argv[i], "--scale=%lf", &value) == 1) {
      options.scale = value;
    } else if (std::sscanf(argv[i], "--queries=%lf", &value) == 1) {
      options.queries = static_cast<size_t>(value);
    } else if (std::sscanf(argv[i], "--seed=%lf", &value) == 1) {
      options.seed = static_cast<uint64_t>(value);
    } else if (std::sscanf(argv[i], "--threads=%lf", &value) == 1) {
      options.threads = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "flags: --scale=<f> --queries=<n> --seed=<n> --threads=<n> "
          "--json=<path>\n");
    }
  }
  return options;
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "";
}

void PerfJson::Begin(const std::string& name) {
  records_.push_back(Record{name, {}});
}

void PerfJson::Field(const std::string& key, double value) {
  Entry e;
  e.key = key;
  e.number = value;
  records_.back().entries.push_back(std::move(e));
}

void PerfJson::Text(const std::string& key, const std::string& value) {
  Entry e;
  e.key = key;
  e.is_text = true;
  e.text = value;
  records_.back().entries.push_back(std::move(e));
}

void PerfJson::Raw(const std::string& key, const std::string& json) {
  Entry e;
  e.key = key;
  e.is_raw = true;
  e.text = json;
  records_.back().entries.push_back(std::move(e));
}

namespace {

/// Minimal string escaping — keys/values here are code-controlled
/// identifiers, but quotes and backslashes must never corrupt the file.
void WriteJsonString(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

}  // namespace

bool PerfJson::Write(const std::string& path, const std::string& bench) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"bench\": ", f);
  WriteJsonString(f, bench);
  std::fputs(", \"records\": [", f);
  for (size_t r = 0; r < records_.size(); ++r) {
    if (r > 0) std::fputc(',', f);
    std::fputs("\n  {\"name\": ", f);
    WriteJsonString(f, records_[r].name);
    for (const Entry& e : records_[r].entries) {
      std::fputs(", ", f);
      WriteJsonString(f, e.key);
      std::fputs(": ", f);
      if (e.is_raw) {
        std::fputs(e.text.c_str(), f);
      } else if (e.is_text) {
        WriteJsonString(f, e.text);
      } else if (std::isfinite(e.number)) {
        std::fprintf(f, "%.17g", e.number);
      } else {
        std::fputs("null", f);  // JSON has no NaN/inf
      }
    }
    std::fputc('}', f);
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

void PrintThroughput(const std::string& method, const char* phase,
                     size_t items, double seconds) {
  const double rate = seconds > 0.0 ? static_cast<double>(items) / seconds
                                    : 0.0;
  std::printf("[throughput] method=%s phase=%s items=%zu seconds=%.4f "
              "rate=%.0f\n",
              method.c_str(), phase, items, seconds, rate);
}

void CompressTimed(core::Compressor& method, const TrajectoryDataset& data) {
  WallTimer timer;
  method.Compress(data);
  PrintThroughput(method.name(), "encode", data.TotalPoints(),
                  timer.ElapsedSeconds());
}

DatasetBundle MakePortoBundle(const BenchOptions& options) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories =
      std::max(20, static_cast<int>(1500 * options.scale));
  gen.horizon = 400;
  gen.min_length = 30;
  gen.max_length = 350;
  gen.seed = options.seed;

  DatasetBundle bundle;
  bundle.name = "Porto";
  bundle.data = datagen::PortoLikeGenerator(gen).Generate();
  bundle.eps_p_spatial = 0.03;
  bundle.eps_p_autocorr = 0.2;
  bundle.eps_s = 0.1;
  bundle.region = ToRect(datagen::PortoLikeGenerator::Region());
  return bundle;
}

DatasetBundle MakeGeoLifeBundle(const BenchOptions& options) {
  datagen::GeneratorOptions gen;
  gen.num_trajectories =
      std::max(10, static_cast<int>(400 * options.scale));
  gen.horizon = 500;
  gen.min_length = 120;
  gen.max_length = 500;
  gen.seed = options.seed + 1;

  DatasetBundle bundle;
  bundle.name = "Geolife";
  bundle.data = datagen::GeoLifeLikeGenerator(gen).Generate();
  bundle.eps_p_spatial = 1.0;  // paper: 5 on GeoLife's global span
  bundle.eps_p_autocorr = 0.2;
  bundle.eps_s = 0.5;
  bundle.region = ToRect(datagen::GeoLifeLikeGenerator::Region());
  return bundle;
}

const std::vector<std::string>& AllMethodNames() {
  static const std::vector<std::string> names = {
      "PPQ-A",        "PPQ-A-basic", "PPQ-S",
      "PPQ-S-basic",  "E-PQ",        "Q-trajectory",
      "Residual Quantization", "Product Quantization", "TrajStore"};
  return names;
}

const std::vector<std::string>& FilteringMethodNames() {
  static const std::vector<std::string> names = {
      "PPQ-A",       "PPQ-A-basic", "PPQ-S",
      "PPQ-S-basic", "E-PQ",        "Q-trajectory",
      "Residual Quantization", "Product Quantization"};
  return names;
}

std::unique_ptr<core::Compressor> MakeCompressor(const std::string& name,
                                                 const DatasetBundle& bundle,
                                                 const MethodSetup& setup) {
  if (name == "Residual Quantization") {
    baselines::ResidualQuantization::Options o;
    o.epsilon1 = setup.epsilon1;
    o.mode = setup.mode;
    o.fixed_bits = setup.fixed_bits;
    o.enable_index = setup.enable_index;
    o.tpi.pi.epsilon_s = bundle.eps_s;
    return std::make_unique<baselines::ResidualQuantization>(o);
  }
  if (name == "Product Quantization") {
    baselines::BaselineOptions o;
    o.epsilon1 = setup.epsilon1;
    o.mode = setup.mode;
    o.fixed_bits = setup.fixed_bits;
    o.enable_index = setup.enable_index;
    o.tpi.pi.epsilon_s = bundle.eps_s;
    return std::make_unique<baselines::ProductQuantization>(o);
  }
  if (name == "TrajStore") {
    baselines::TrajStore::Options o;
    o.epsilon1 = setup.epsilon1;
    o.mode = setup.mode;
    o.fixed_bits = setup.fixed_bits;
    o.enable_index = setup.enable_index;
    o.tpi.pi.epsilon_s = bundle.eps_s;
    o.region = bundle.region;
    return std::make_unique<baselines::TrajStore>(o);
  }

  // PPQ family.
  core::PpqOptions o;
  o.epsilon1 = setup.epsilon1;
  o.mode = setup.mode;
  o.fixed_bits = setup.fixed_bits;
  o.cqc_grid_size = setup.cqc_grid_size;
  o.enable_index = setup.enable_index;
  o.tpi.pi.epsilon_s = bundle.eps_s;
  auto method = core::MakeMethod(name, o);
  // Dataset-calibrated partition thresholds.
  core::PpqOptions configured = method->options();
  if (configured.strategy == core::PartitionStrategy::kSpatial) {
    configured.epsilon_p = bundle.eps_p_spatial;
  } else if (configured.strategy ==
             core::PartitionStrategy::kAutocorrelation) {
    configured.epsilon_p = bundle.eps_p_autocorr;
  }
  return std::make_unique<core::PpqTrajectory>(configured);
}

MethodSetup DeviationSetup(double deviation_m, bool cqc_method) {
  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  if (cqc_method) {
    // sqrt(2)/2 * gs = D  =>  gs = sqrt(2) * D; eps_1^M = 2 gs.
    setup.cqc_grid_size = MetersToDegrees(std::sqrt(2.0) * deviation_m);
    setup.epsilon1 = 2.0 * setup.cqc_grid_size;
  } else {
    setup.epsilon1 = MetersToDegrees(deviation_m);
  }
  return setup;
}

}  // namespace ppq::bench
