/// \file bench_table5.cc
/// Reproduces Table 5: summary construction time (seconds) against the
/// target spatial deviation (200-1000 m), in the online error-bounded
/// regime. PPQ-A and PPQ-S reach the deviation through CQC
/// (gs = sqrt(2) * D, eps_1^M = 2 gs, the paper's setting); the remaining
/// methods set eps_1^M = D directly. Index construction is excluded so
/// the number isolates summary generation, as in the paper.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

namespace ppq::bench {
namespace {

void RunDataset(const DatasetBundle& bundle) {
  std::printf("\n=== Table 5 (%s): summary build time (s) vs spatial "
              "deviation (m) ===\n",
              bundle.name.c_str());
  std::printf("%-24s %8s %8s %8s %8s %8s\n", "Method", "200", "400", "600",
              "800", "1000");

  for (const std::string& name : AllMethodNames()) {
    const bool cqc = (name == "PPQ-A" || name == "PPQ-S");
    std::printf("%-24s", name.c_str());
    double total_seconds = 0.0;
    size_t total_points = 0;
    for (double deviation : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
      MethodSetup setup = DeviationSetup(deviation, cqc);
      setup.enable_index = false;
      auto method = MakeCompressor(name, bundle, setup);
      WallTimer timer;
      method->Compress(bundle.data);
      total_seconds += timer.ElapsedSeconds();
      total_points += bundle.data.TotalPoints();
      std::printf(" %8.3f", timer.ElapsedSeconds());
      std::fflush(stdout);
    }
    std::printf("\n");
    PrintThroughput(name, "encode", total_points, total_seconds);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options));
  RunDataset(MakeGeoLifeBundle(options));
  return 0;
}
