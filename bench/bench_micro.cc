/// \file bench_micro.cc
/// google-benchmark micro suite over the substrates: quantizer assignment
/// and growth, CQC encode/decode, Huffman coding, grid-index queries,
/// k-means, partitioner updates, and the linear predictor. These are the
/// per-operation costs behind the table-level build times.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "cqc/cqc_codec.h"
#include "index/grid_index.h"
#include "index/huffman.h"
#include "partition/incremental_partitioner.h"
#include "predictor/linear_predictor.h"
#include "quantizer/incremental_quantizer.h"
#include "quantizer/kmeans.h"

namespace ppq {
namespace {

std::vector<Point> RandomPoints(size_t n, double span, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0.0, span), rng.Uniform(0.0, span)});
  }
  return points;
}

void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto points = RandomPoints(static_cast<size_t>(n), 1.0, 1);
  const auto flat = quantizer::FlattenPoints(points);
  for (auto _ : state) {
    Rng rng(2);
    auto result = quantizer::RunKMeans(flat, n, 2, k, {}, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans)->Args({1000, 16})->Args({1000, 256})->Args({10000, 64});

void BM_QuantizerAssign(benchmark::State& state) {
  // Steady-state assignment: codebook already covers the space.
  quantizer::IncrementalQuantizer::Options options;
  options.epsilon = 0.01;
  quantizer::IncrementalQuantizer quantizer(options);
  quantizer::Codebook codebook;
  const auto warmup = RandomPoints(20000, 1.0, 3);
  quantizer.QuantizeBatch(warmup, &codebook);
  const auto batch = RandomPoints(static_cast<size_t>(state.range(0)), 1.0, 4);
  for (auto _ : state) {
    auto codes = quantizer.QuantizeBatch(batch, &codebook);
    benchmark::DoNotOptimize(codes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizerAssign)->Arg(1000)->Arg(10000);

void BM_QuantizerGrowth(benchmark::State& state) {
  // Cold start: every batch lands in fresh space, forcing growth.
  const auto batch = RandomPoints(static_cast<size_t>(state.range(0)), 1.0, 5);
  for (auto _ : state) {
    state.PauseTiming();
    quantizer::IncrementalQuantizer::Options options;
    options.epsilon = 0.005;
    quantizer::IncrementalQuantizer quantizer(options);
    quantizer::Codebook codebook;
    state.ResumeTiming();
    auto codes = quantizer.QuantizeBatch(batch, &codebook);
    benchmark::DoNotOptimize(codes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizerGrowth)->Arg(1000)->Arg(10000);

void BM_CqcEncode(benchmark::State& state) {
  cqc::CqcCodec codec(0.001, 50.0 / 111320.0);
  Rng rng(6);
  const Point original{1.0, 1.0};
  std::vector<Point> recons;
  for (int i = 0; i < 1024; ++i) {
    recons.push_back({1.0 + rng.Uniform(-9e-4, 9e-4),
                      1.0 + rng.Uniform(-9e-4, 9e-4)});
  }
  size_t i = 0;
  for (auto _ : state) {
    auto code = codec.Encode(original, recons[i++ & 1023]);
    benchmark::DoNotOptimize(code);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CqcEncode);

void BM_CqcRefine(benchmark::State& state) {
  cqc::CqcCodec codec(0.001, 50.0 / 111320.0);
  const Point original{1.0, 1.0};
  const Point recon{1.0004, 0.9996};
  const cqc::CqcCode code = codec.Encode(original, recon);
  for (auto _ : state) {
    auto refined = codec.Refine(recon, code);
    benchmark::DoNotOptimize(refined);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CqcRefine);

void BM_HuffmanRoundTrip(benchmark::State& state) {
  Rng rng(7);
  std::vector<int32_t> ids;
  int32_t id = 0;
  for (int i = 0; i < 1000; ++i) {
    id += static_cast<int32_t>(rng.UniformInt(1, 8));
    ids.push_back(id);
  }
  std::unordered_map<uint32_t, uint64_t> freq;
  index::AccumulateDeltaFrequencies(ids, &freq);
  const auto table = index::HuffmanTable::Build(freq);
  for (auto _ : state) {
    auto packed = index::CompressIds(ids, table);
    auto unpacked = index::DecompressIds(*packed, table);
    benchmark::DoNotOptimize(unpacked);
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_HuffmanRoundTrip);

void BM_GridIndexQuery(benchmark::State& state) {
  index::GridIndex grid(index::Rect{0.0, 0.0, 1.0, 1.0}, 0.01);
  const auto points = RandomPoints(50000, 1.0, 8);
  for (size_t i = 0; i < points.size(); ++i) {
    grid.Insert(static_cast<Tick>(i % 100), static_cast<TrajId>(i),
                points[i]);
  }
  grid.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    auto ids = grid.Query(points[i % points.size()],
                          static_cast<Tick>(i % 100));
    benchmark::DoNotOptimize(ids);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridIndexQuery);

void BM_PartitionerUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  partition::IncrementalPartitioner::Options options;
  options.epsilon = 0.1;
  partition::IncrementalPartitioner partitioner(options);
  Rng rng(9);
  std::vector<TrajId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(static_cast<TrajId>(i));
  std::vector<double> features;
  for (int i = 0; i < n; ++i) {
    features.push_back(rng.Uniform(0.0, 1.0));
    features.push_back(rng.Uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    // Jitter features slightly to mimic motion between ticks.
    for (double& f : features) f += rng.Normal(0.0, 1e-3);
    auto assignment = partitioner.Update(ids, features, 2);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionerUpdate)->Arg(500)->Arg(2000);

void BM_PredictorFit(benchmark::State& state) {
  Rng rng(10);
  std::vector<predictor::PredictionSample> samples;
  for (int i = 0; i < 500; ++i) {
    predictor::PredictionSample s;
    s.target = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    for (int j = 0; j < 3; ++j) {
      s.history.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
    }
    samples.push_back(std::move(s));
  }
  predictor::LinearPredictor predictor(3);
  for (auto _ : state) {
    auto coeffs = predictor.Fit(samples);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations() * samples.size());
}
BENCHMARK(BM_PredictorFit);

}  // namespace
}  // namespace ppq

BENCHMARK_MAIN();
