/// \file bench_micro.cc
/// google-benchmark micro suite over the substrates: quantizer assignment
/// and growth, CQC encode/decode, Huffman coding, grid-index queries,
/// k-means, partitioner updates, the linear predictor — and the simd.h
/// hot-path kernels, each benchmarked scalar-vs-dispatched.
///
/// After the google-benchmark run, a hand-timed kernel gate suite prints
/// one machine-parseable line per kernel:
///   [micro] kernel=<name> n=<n> scalar_ns=<ns/item> simd_ns=<ns/item>
///           speedup=<r> level=<scalar|sse2|avx2> gate=<pass|FAIL|none|skipped>
/// The gated kernel is span_decode — the deployed batched span decode
/// (SummarySnapshot::ReconstructSpan over a real PPQ-A seal, warm memo)
/// against the scalar per-point decode loop the serve path ran before
/// batching — which must hold >= 2x; the binary exits non-zero when it
/// does not (gate=skipped in -DPPQ_SIMD=OFF builds, where there is no
/// SIMD side to compare). The other kernel lines are instruction-level
/// scalar-reference-vs-dispatched ratios, reported for the perf trail.
///
/// --json=<path> additionally writes every [micro] record (plus the
/// google-benchmark-independent fields) as a BENCH_micro.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/query_eval.h"
#include "cqc/cqc_codec.h"
#include "index/grid_index.h"
#include "index/huffman.h"
#include "partition/incremental_partitioner.h"
#include "predictor/linear_predictor.h"
#include "quantizer/incremental_quantizer.h"
#include "quantizer/kmeans.h"

namespace ppq {
namespace {

std::vector<Point> RandomPoints(size_t n, double span, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0.0, span), rng.Uniform(0.0, span)});
  }
  return points;
}

void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto points = RandomPoints(static_cast<size_t>(n), 1.0, 1);
  const auto flat = quantizer::FlattenPoints(points);
  for (auto _ : state) {
    Rng rng(2);
    auto result = quantizer::RunKMeans(flat, n, 2, k, {}, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans)->Args({1000, 16})->Args({1000, 256})->Args({10000, 64});

void BM_QuantizerAssign(benchmark::State& state) {
  // Steady-state assignment: codebook already covers the space.
  quantizer::IncrementalQuantizer::Options options;
  options.epsilon = 0.01;
  quantizer::IncrementalQuantizer quantizer(options);
  quantizer::Codebook codebook;
  const auto warmup = RandomPoints(20000, 1.0, 3);
  quantizer.QuantizeBatch(warmup, &codebook);
  const auto batch = RandomPoints(static_cast<size_t>(state.range(0)), 1.0, 4);
  for (auto _ : state) {
    auto codes = quantizer.QuantizeBatch(batch, &codebook);
    benchmark::DoNotOptimize(codes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizerAssign)->Arg(1000)->Arg(10000);

void BM_QuantizerGrowth(benchmark::State& state) {
  // Cold start: every batch lands in fresh space, forcing growth.
  const auto batch = RandomPoints(static_cast<size_t>(state.range(0)), 1.0, 5);
  for (auto _ : state) {
    state.PauseTiming();
    quantizer::IncrementalQuantizer::Options options;
    options.epsilon = 0.005;
    quantizer::IncrementalQuantizer quantizer(options);
    quantizer::Codebook codebook;
    state.ResumeTiming();
    auto codes = quantizer.QuantizeBatch(batch, &codebook);
    benchmark::DoNotOptimize(codes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizerGrowth)->Arg(1000)->Arg(10000);

void BM_CqcEncode(benchmark::State& state) {
  cqc::CqcCodec codec(0.001, 50.0 / 111320.0);
  Rng rng(6);
  const Point original{1.0, 1.0};
  std::vector<Point> recons;
  for (int i = 0; i < 1024; ++i) {
    recons.push_back({1.0 + rng.Uniform(-9e-4, 9e-4),
                      1.0 + rng.Uniform(-9e-4, 9e-4)});
  }
  size_t i = 0;
  for (auto _ : state) {
    auto code = codec.Encode(original, recons[i++ & 1023]);
    benchmark::DoNotOptimize(code);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CqcEncode);

void BM_CqcRefine(benchmark::State& state) {
  cqc::CqcCodec codec(0.001, 50.0 / 111320.0);
  const Point original{1.0, 1.0};
  const Point recon{1.0004, 0.9996};
  const cqc::CqcCode code = codec.Encode(original, recon);
  for (auto _ : state) {
    auto refined = codec.Refine(recon, code);
    benchmark::DoNotOptimize(refined);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CqcRefine);

void BM_HuffmanRoundTrip(benchmark::State& state) {
  Rng rng(7);
  std::vector<int32_t> ids;
  int32_t id = 0;
  for (int i = 0; i < 1000; ++i) {
    id += static_cast<int32_t>(rng.UniformInt(1, 8));
    ids.push_back(id);
  }
  std::unordered_map<uint32_t, uint64_t> freq;
  index::AccumulateDeltaFrequencies(ids, &freq);
  const auto table = index::HuffmanTable::Build(freq);
  for (auto _ : state) {
    auto packed = index::CompressIds(ids, table);
    auto unpacked = index::DecompressIds(*packed, table);
    benchmark::DoNotOptimize(unpacked);
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_HuffmanRoundTrip);

void BM_GridIndexQuery(benchmark::State& state) {
  index::GridIndex grid(index::Rect{0.0, 0.0, 1.0, 1.0}, 0.01);
  const auto points = RandomPoints(50000, 1.0, 8);
  for (size_t i = 0; i < points.size(); ++i) {
    grid.Insert(static_cast<Tick>(i % 100), static_cast<TrajId>(i),
                points[i]);
  }
  grid.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    auto ids = grid.Query(points[i % points.size()],
                          static_cast<Tick>(i % 100));
    benchmark::DoNotOptimize(ids);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridIndexQuery);

void BM_PartitionerUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  partition::IncrementalPartitioner::Options options;
  options.epsilon = 0.1;
  partition::IncrementalPartitioner partitioner(options);
  Rng rng(9);
  std::vector<TrajId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(static_cast<TrajId>(i));
  std::vector<double> features;
  for (int i = 0; i < n; ++i) {
    features.push_back(rng.Uniform(0.0, 1.0));
    features.push_back(rng.Uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    // Jitter features slightly to mimic motion between ticks.
    for (double& f : features) f += rng.Normal(0.0, 1e-3);
    auto assignment = partitioner.Update(ids, features, 2);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionerUpdate)->Arg(500)->Arg(2000);

void BM_PredictorFit(benchmark::State& state) {
  Rng rng(10);
  std::vector<predictor::PredictionSample> samples;
  for (int i = 0; i < 500; ++i) {
    predictor::PredictionSample s;
    s.target = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    for (int j = 0; j < 3; ++j) {
      s.history.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
    }
    samples.push_back(std::move(s));
  }
  predictor::LinearPredictor predictor(3);
  for (auto _ : state) {
    auto coeffs = predictor.Fit(samples);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations() * samples.size());
}
BENCHMARK(BM_PredictorFit);

// ---------------------------------------------------------------------------
// simd.h kernels: scalar reference vs dispatched, same inputs
// ---------------------------------------------------------------------------

/// Shared inputs for the kernel benchmarks: uniform points, their SoA
/// split, and a realistic CQC code stream (encoded deviations, so the
/// bits/length distributions match what a summary stores).
struct KernelInputs {
  explicit KernelInputs(size_t n) : codec(0.001, 50.0 / 111320.0) {
    Rng rng(11);
    pts.reserve(n);
    xs.reserve(n);
    ys.reserve(n);
    bits.reserve(n);
    lens.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Point p{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
      pts.push_back(p);
      xs.push_back(p.x);
      ys.push_back(p.y);
      const Point recon{p.x + rng.Uniform(-9e-4, 9e-4),
                        p.y + rng.Uniform(-9e-4, 9e-4)};
      const cqc::CqcCode code = codec.Encode(p, recon);
      bits.push_back(code.bits);
      lens.push_back(code.length);
    }
    mask.resize(n);
    dist.resize(n);
    out.resize(n);
  }

  cqc::CqcCodec codec;
  std::vector<Point> pts;
  std::vector<double> xs, ys;
  std::vector<uint64_t> bits;
  std::vector<int32_t> lens;
  std::vector<uint8_t> mask;
  std::vector<double> dist;
  std::vector<Point> out;
  Point q{0.5, 0.5};
  double min_x = 0.25, min_y = 0.25, max_x = 0.75, max_y = 0.75;
};

using MaskFn = void (*)(const Point*, size_t, double, double, double, double,
                        uint8_t*);
using RegionFn = void (*)(const Point*, size_t, double, double, double,
                          double, double*);
using DistFn = void (*)(const Point*, size_t, const Point&, double*);
using SoaFn = void (*)(const double*, const double*, size_t, const Point&,
                       double*);
using RefineFn = void (*)(const Point*, const uint64_t*, const int32_t*,
                          size_t, const Point*, size_t, int32_t, Point*);

void BM_KernelContainsMask(benchmark::State& state, MaskFn fn) {
  KernelInputs in(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fn(in.pts.data(), in.pts.size(), in.min_x, in.min_y, in.max_x, in.max_y,
       in.mask.data());
    benchmark::DoNotOptimize(in.mask.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_KernelContainsMask, scalar, &simd::ContainsMaskScalar)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelContainsMask, simd, &simd::ContainsMask)
    ->Arg(4096);

void BM_KernelRegionDistances(benchmark::State& state, RegionFn fn) {
  KernelInputs in(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fn(in.pts.data(), in.pts.size(), in.min_x, in.min_y, in.max_x, in.max_y,
       in.dist.data());
    benchmark::DoNotOptimize(in.dist.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_KernelRegionDistances, scalar,
                  &simd::RegionDistancesScalar)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelRegionDistances, simd, &simd::RegionDistances)
    ->Arg(4096);

void BM_KernelDistances(benchmark::State& state, DistFn fn) {
  KernelInputs in(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fn(in.pts.data(), in.pts.size(), in.q, in.dist.data());
    benchmark::DoNotOptimize(in.dist.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_KernelDistances, scalar, &simd::DistancesScalar)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelDistances, simd, &simd::Distances)->Arg(4096);

void BM_KernelSquaredDistancesSoa(benchmark::State& state, SoaFn fn) {
  KernelInputs in(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fn(in.xs.data(), in.ys.data(), in.xs.size(), in.q, in.dist.data());
    benchmark::DoNotOptimize(in.dist.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_KernelSquaredDistancesSoa, scalar,
                  &simd::SquaredDistancesSoaScalar)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelSquaredDistancesSoa, simd,
                  &simd::SquaredDistancesSoa)
    ->Arg(4096);

void BM_KernelCqcRefineSpan(benchmark::State& state, RefineFn fn) {
  KernelInputs in(static_cast<size_t>(state.range(0)));
  const auto& lut = in.codec.refine_lut();
  for (auto _ : state) {
    fn(in.pts.data(), in.bits.data(), in.lens.data(), in.pts.size(),
       lut.data(), lut.size(), in.codec.code_bits(), in.out.data());
    benchmark::DoNotOptimize(in.out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_KernelCqcRefineSpan, scalar, &simd::CqcRefineSpanScalar)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelCqcRefineSpan, simd, &simd::CqcRefineSpan)
    ->Arg(4096);

// ---------------------------------------------------------------------------
// Hand-timed kernel gate suite ([micro] lines + BENCH_micro.json)
// ---------------------------------------------------------------------------

/// Best-of-\p reps ns/item over \p inner calls of \p f per rep.
template <typename F>
double BestNsPerItem(size_t items, int reps, int inner, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) f();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    best = std::min(best, ns / (static_cast<double>(items) * inner));
  }
  return best;
}

int RunKernelGate(const std::string& json_path) {
  const char* level = simd::ActiveLevelName();
  const bool simd_on = simd::ActiveLevel() != simd::Level::kScalar;
  bench::PerfJson json;
  bool gate_failed = false;

  const auto report = [&](const char* kernel, size_t n, double scalar_ns,
                          double simd_ns, bool gated) {
    const double speedup = simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
    const char* gate = "none";
    if (gated) {
      if (!simd_on) {
        gate = "skipped";
      } else if (speedup >= 2.0) {
        gate = "pass";
      } else {
        gate = "FAIL";
        gate_failed = true;
      }
    }
    std::printf("[micro] kernel=%s n=%zu scalar_ns=%.3f simd_ns=%.3f "
                "speedup=%.2f level=%s gate=%s\n",
                kernel, n, scalar_ns, simd_ns, speedup, level, gate);
    json.Begin(kernel);
    json.Field("n", static_cast<double>(n));
    json.Field("scalar_ns", scalar_ns);
    json.Field("simd_ns", simd_ns);
    json.Field("speedup", speedup);
    json.Text("level", level);
    json.Text("gate", gate);
  };

  // --- Instruction-level kernels: scalar reference vs dispatched --------
  constexpr size_t kN = 4096;
  constexpr int kReps = 5, kInner = 64;
  KernelInputs in(kN);

  report("contains_mask", kN,
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::ContainsMaskScalar(
                             in.pts.data(), kN, in.min_x, in.min_y, in.max_x,
                             in.max_y, in.mask.data());
                         benchmark::DoNotOptimize(in.mask.data());
                       }),
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::ContainsMask(in.pts.data(), kN, in.min_x,
                                            in.min_y, in.max_x, in.max_y,
                                            in.mask.data());
                         benchmark::DoNotOptimize(in.mask.data());
                       }),
         /*gated=*/false);
  report("region_distance", kN,
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::RegionDistancesScalar(
                             in.pts.data(), kN, in.min_x, in.min_y, in.max_x,
                             in.max_y, in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::RegionDistances(in.pts.data(), kN, in.min_x,
                                               in.min_y, in.max_x, in.max_y,
                                               in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         /*gated=*/false);
  report("knn_distance", kN,
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::DistancesScalar(in.pts.data(), kN, in.q,
                                               in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::Distances(in.pts.data(), kN, in.q,
                                         in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         /*gated=*/false);
  report("nearest_centroid", kN,
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::SquaredDistancesSoaScalar(
                             in.xs.data(), in.ys.data(), kN, in.q,
                             in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         BestNsPerItem(kN, kReps, kInner,
                       [&] {
                         simd::SquaredDistancesSoa(in.xs.data(), in.ys.data(),
                                                   kN, in.q, in.dist.data());
                         benchmark::DoNotOptimize(in.dist.data());
                       }),
         /*gated=*/false);
  {
    const auto& lut = in.codec.refine_lut();
    report("cqc_refine_span", kN,
           BestNsPerItem(kN, kReps, kInner,
                         [&] {
                           simd::CqcRefineSpanScalar(
                               in.pts.data(), in.bits.data(), in.lens.data(),
                               kN, lut.data(), lut.size(),
                               in.codec.code_bits(), in.out.data());
                           benchmark::DoNotOptimize(in.out.data());
                         }),
           BestNsPerItem(kN, kReps, kInner,
                         [&] {
                           simd::CqcRefineSpan(
                               in.pts.data(), in.bits.data(), in.lens.data(),
                               kN, lut.data(), lut.size(),
                               in.codec.code_bits(), in.out.data());
                           benchmark::DoNotOptimize(in.out.data());
                         }),
           /*gated=*/false);
  }

  // --- The gated kernel: deployed span decode vs scalar per-point decode
  // over a real PPQ-A seal (warm memo — the query-serving steady state
  // whose cost QueryStats::decode_micros measures).
  {
    bench::BenchOptions bopts;
    bopts.scale = 0.05;
    bench::DatasetBundle bundle = bench::MakePortoBundle(bopts);
    bench::MethodSetup setup;
    setup.mode = core::QuantizationMode::kErrorBounded;
    auto method = bench::MakeCompressor("PPQ-A", bundle, setup);
    method->Compress(bundle.data);
    const core::SnapshotPtr snap = method->Seal();
    const std::vector<core::RecordSpan> spans = method->RecordSpans();

    constexpr size_t kSpan = 64;
    size_t total_points = 0;
    for (const auto& s : spans) total_points += static_cast<size_t>(s.length);

    core::DecodeMemo memo_point, memo_span;
    std::vector<Point> buf(kSpan);
    const auto per_point_pass = [&] {
      for (const auto& s : spans) {
        const Tick end = s.start_tick + s.length;
        for (Tick t = s.start_tick; t < end; ++t) {
          const auto p = snap->Reconstruct(s.id, t, &memo_point);
          benchmark::DoNotOptimize(p);
        }
      }
    };
    const auto span_pass = [&] {
      for (const auto& s : spans) {
        const Tick end = s.start_tick + s.length;
        for (Tick t = s.start_tick; t < end;
             t += static_cast<Tick>(kSpan)) {
          const size_t want =
              std::min(kSpan, static_cast<size_t>(end - t));
          const size_t m =
              snap->ReconstructSpan(s.id, t, want, buf.data(), &memo_span);
          benchmark::DoNotOptimize(m);
        }
      }
    };
    per_point_pass();  // warm the decode memos once
    span_pass();
    report("span_decode", total_points,
           BestNsPerItem(total_points, kReps, 1, per_point_pass),
           BestNsPerItem(total_points, kReps, 1, span_pass),
           /*gated=*/true);
  }

  if (!json_path.empty() && !json.Write(json_path, "micro")) {
    std::fprintf(stderr, "bench_micro: could not write %s\n",
                 json_path.c_str());
    return 2;
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace ppq

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know: pull --json=<path>
  // out of argv before Initialize sees it.
  const std::string json_path = ppq::bench::ParseJsonPath(argc, argv);
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) != 0) args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ppq::RunKernelGate(json_path);
}
