/// \file bench_fig7.cc
/// Reproduces Figure 7: running time of the incremental temporal
/// partitioning component (Section 3.2.2) against the partition threshold
/// eps_p, for PPQ-A and PPQ-S on both workloads. Larger eps_p means fewer
/// partitions and fewer growth rounds, so the time falls.
///
/// Threshold values are the recalibrated equivalents of the paper's
/// sweeps (DESIGN.md section 4): our bounded ACF features replace raw AR
/// coefficients for PPQ-A.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/ppq_trajectory.h"

namespace ppq::bench {
namespace {

void RunSweep(const DatasetBundle& bundle, const std::string& method,
              const std::vector<double>& eps_values) {
  std::printf("\n--- Figure 7: %s on %s ---\n", method.c_str(),
              bundle.name.c_str());
  std::printf("%8s %18s %8s %8s\n", "eps_p", "partition time(s)", "peak q",
              "avg q");
  for (double eps : eps_values) {
    MethodSetup setup;
    setup.mode = core::QuantizationMode::kErrorBounded;
    setup.enable_index = false;
    auto compressor = MakeCompressor(method, bundle, setup);
    auto* ppq = static_cast<core::PpqTrajectory*>(compressor.get());
    core::PpqOptions options = ppq->options();
    options.epsilon_p = eps;
    core::PpqTrajectory tuned(options);
    CompressTimed(tuned, bundle.data);
    int peak = 0;
    double sum = 0.0;
    for (const auto& stats : tuned.tick_stats()) {
      peak = std::max(peak, stats.partitions);
      sum += stats.partitions;
    }
    const double avg = tuned.tick_stats().empty()
                           ? 0.0
                           : sum / static_cast<double>(tuned.tick_stats().size());
    std::printf("%8g %18.3f %8d %8.1f\n", eps, tuned.partition_seconds(),
                peak, avg);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  const DatasetBundle porto = MakePortoBundle(options);
  const DatasetBundle geolife = MakeGeoLifeBundle(options);

  // PPQ-A sweeps (ACF feature space).
  RunSweep(porto, "PPQ-A", {0.1, 0.2, 0.4});
  RunSweep(geolife, "PPQ-A", {0.1, 0.2, 0.4});
  // PPQ-S sweeps (position space; paper uses 0.1-0.5 Porto, 1-5 GeoLife).
  RunSweep(porto, "PPQ-S", {0.01, 0.03, 0.05});
  RunSweep(geolife, "PPQ-S", {0.5, 1.0, 2.0});
  return 0;
}
