/// \file bench_table9.cc
/// Reproduces Table 9: disk-based index performance — index size, number
/// of page I/Os for the query batch, query response time, and build time
/// for TPI, per-tick PI, and TrajStore, all indexing the raw trajectory
/// points over a paged store (1 MB pages). Queries are sorted by start
/// time, as in the paper. TPI parameters: eps_d = 0.8, eps_c = 0.5.

#include <algorithm>
#include <cstdio>

#include "baselines/trajstore.h"
#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "storage/disk_index.h"

namespace ppq::bench {
namespace {

/// The paper stores ~1.5 GB of points on 1 MB pages (~1500 pages). To keep
/// the page count proportional on the laptop-scale workloads, pages here
/// are 4 KB; the I/O *ratios* between the three indexes are what Table 9
/// argues from.
constexpr size_t kPageSize = 4096;

struct Row {
  const char* name;
  double size_mb;
  uint64_t ios;
  double response_s;
  double build_s;
};

void RunDataset(const DatasetBundle& bundle, const BenchOptions& options) {
  std::printf("\n=== Table 9 (%s): disk-based index performance ===\n",
              bundle.name.c_str());

  // Query batch sorted by start time.
  Rng rng(options.seed + 33);
  auto queries = core::SampleQueries(bundle.data, options.queries, &rng);
  std::sort(queries.begin(), queries.end(),
            [](const core::QuerySpec& a, const core::QuerySpec& b) {
              return a.tick < b.tick;
            });
  const Tick lo = bundle.data.MinTick();
  const Tick hi = bundle.data.MaxTick();

  std::vector<Row> rows;

  // --- TPI -----------------------------------------------------------------
  {
    storage::DiskResidentTpi::Options o;
    o.tpi.pi.epsilon_s = bundle.eps_s;
    o.tpi.pi.cell_size = 100.0 / kMetersPerDegree;
    o.tpi.epsilon_d = 0.8;
    o.tpi.epsilon_c = 0.5;
    o.page_size = kPageSize;
    storage::DiskResidentTpi tpi(o);
    WallTimer build;
    for (Tick t = lo; t < hi; ++t) {
      const TimeSlice slice = bundle.data.SliceAt(t);
      if (!slice.empty()) tpi.Ingest(slice);
    }
    tpi.Seal();
    const double build_s = build.ElapsedSeconds();
    tpi.pager().ResetIoStats();
    tpi.pager().DropCache();
    WallTimer respond;
    for (const auto& q : queries) (void)tpi.Query(q.position, q.tick);
    rows.push_back({"TPI",
                    static_cast<double>(tpi.IndexSizeBytes()) / (1 << 20),
                    tpi.io_stats().pages_read, respond.ElapsedSeconds(),
                    build_s});
  }

  // --- PI (per-tick) ---------------------------------------------------------
  {
    storage::DiskResidentPi::Options o;
    o.pi.epsilon_s = bundle.eps_s;
    o.pi.cell_size = 100.0 / kMetersPerDegree;
    o.page_size = kPageSize;
    storage::DiskResidentPi pi(o);
    WallTimer build;
    for (Tick t = lo; t < hi; ++t) {
      const TimeSlice slice = bundle.data.SliceAt(t);
      if (!slice.empty()) pi.Ingest(slice);
    }
    const double build_s = build.ElapsedSeconds();
    pi.pager().ResetIoStats();
    pi.pager().DropCache();
    WallTimer respond;
    for (const auto& q : queries) (void)pi.Query(q.position, q.tick);
    rows.push_back({"PI",
                    static_cast<double>(pi.IndexSizeBytes()) / (1 << 20),
                    pi.io_stats().pages_read, respond.ElapsedSeconds(),
                    build_s});
  }

  // --- TrajStore -------------------------------------------------------------
  {
    storage::PageManager pager(kPageSize);
    baselines::TrajStore::Options o;
    o.region = bundle.region;
    o.pager = &pager;
    o.enable_index = false;  // the quadtree itself is the index here
    baselines::TrajStore store(o);
    WallTimer build;
    for (Tick t = lo; t < hi; ++t) {
      const TimeSlice slice = bundle.data.SliceAt(t);
      if (!slice.empty()) store.ObserveSlice(slice);
    }
    store.Finish();
    const double build_s = build.ElapsedSeconds();
    pager.ResetIoStats();
    pager.DropCache();
    WallTimer respond;
    for (const auto& q : queries) (void)store.DiskQuery(q.position, q.tick);
    rows.push_back({"TrajStore",
                    static_cast<double>(store.SummaryBytes()) / (1 << 20),
                    pager.io_stats().pages_read, respond.ElapsedSeconds(),
                    build_s});
  }

  std::printf("%-12s %12s %10s %16s %14s\n", "Index", "Size(MB)", "No.I/Os",
              "Response Time(s)", "Building(s)");
  for (const Row& row : rows) {
    std::printf("%-12s %12.3f %10llu %16.3f %14.2f\n", row.name, row.size_mb,
                static_cast<unsigned long long>(row.ios), row.response_s,
                row.build_s);
    PrintThroughput(row.name, "encode", bundle.data.TotalPoints(),
                    row.build_s);
    PrintThroughput(row.name, "serve", queries.size(), row.response_s);
  }
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  using namespace ppq::bench;
  const BenchOptions options = ParseArgs(argc, argv);
  RunDataset(MakePortoBundle(options), options);
  RunDataset(MakeGeoLifeBundle(options), options);
  return 0;
}
