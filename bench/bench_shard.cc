/// \file bench_shard.cc
/// Sharded-repository benchmark: compress a Porto-like workload into a
/// hash-partitioned ShardedRepository at --shards=N (default 4) AND at 1
/// shard, persist the N-shard repository through the manifest
/// (SaveAll -> OpenRepository, so the timed serving path is the real
/// cold-open one), and drive both through the scatter-gather
/// ShardedQueryService with a mixed STRQ / window / k-NN / TPQ workload.
///
/// Three correctness gates run before anything is reported, and the
/// process exits non-zero if any fails:
///  1. The 1-shard repository answers byte-identical to the serial
///     unsharded QueryEngine (the sharded stack adds nothing at N=1).
///  2. Exact-mode STRQ and window id sets are identical between N shards
///     and 1 shard — sharding must never change verified answers, even
///     though each shard count quantizes differently.
///  3. N-shard local-search results contain the exact results (recall 1
///     survives sharding).
///
/// Output: shared [throughput] lines (phase=encode/seal/save/open/serve)
/// plus one [shard] line per configuration:
///   [shard] shards=4 threads=2 requests=350 seconds=0.21 qps=1667
///           speedup_vs_1shard=1.8 identical_exact=yes

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench/bench_common.h"
#include "common/geo.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_backend.h"
#include "core/query_engine.h"
#include "obs/metrics.h"
#include "repo/sharded_query_service.h"
#include "repo/sharded_repository.h"

namespace ppq::bench {
namespace {

constexpr size_t kKnnK = 8;
constexpr int kTpqLength = 8;

struct Workload {
  std::vector<core::QueryRequest> requests;
  /// Indices of the exact-mode STRQ/window requests (gate 2) and their
  /// local-search twins (gate 3): local[i] relaxes exact[i].
  std::vector<size_t> exact;
  std::vector<size_t> local;
};

Workload MakeWorkload(const TrajectoryDataset& data, size_t queries,
                      uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (const auto& q : core::SampleQueries(data, queries / 2, &rng)) {
    w.exact.push_back(w.requests.size());
    w.requests.push_back(core::StrqRequest{q, core::StrqMode::kExact});
    w.local.push_back(w.requests.size());
    w.requests.push_back(core::StrqRequest{q, core::StrqMode::kLocalSearch});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    const core::WindowSpec window{
        core::Window{q.position.x - half, q.position.y - half,
                     q.position.x + half, q.position.y + half},
        q.tick};
    w.exact.push_back(w.requests.size());
    w.requests.push_back(core::WindowRequest{window, core::StrqMode::kExact});
    w.local.push_back(w.requests.size());
    w.requests.push_back(
        core::WindowRequest{window, core::StrqMode::kLocalSearch});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    w.requests.push_back(core::KnnRequest{q, kKnnK});
  }
  for (const auto& q : core::SampleQueries(data, queries / 4, &rng)) {
    w.requests.push_back(
        core::TpqRequest{q, kTpqLength, core::StrqMode::kExact});
  }
  return w;
}

using Payload = std::variant<core::StrqResult, std::vector<core::Neighbor>,
                             core::TpqResult>;

/// Compress \p bundle's dataset into \p num_shards shards (timed).
std::unique_ptr<repo::ShardedRepository> BuildRepository(
    const DatasetBundle& bundle, uint32_t num_shards, size_t threads) {
  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  repo::ShardedRepository::Options options;
  options.num_shards = num_shards;
  options.num_threads = threads;
  auto repository = std::make_unique<repo::ShardedRepository>(
      [&bundle, &setup](uint32_t) {
        return MakeCompressor("PPQ-A", bundle, setup);
      },
      options);

  WallTimer timer;
  repository->Compress(bundle.data);
  PrintThroughput("ShardedRepo/" + std::to_string(num_shards) + "s",
                  "encode", bundle.data.TotalPoints(),
                  timer.ElapsedSeconds());
  return repository;
}

/// Serve the whole workload through any \p service backend (timed);
/// returns payloads.
std::vector<Payload> Serve(core::QueryBackend& service,
                           const Workload& workload, double* seconds) {
  WallTimer timer;
  auto futures = service.SubmitBatch(workload.requests);
  std::vector<Payload> payloads;
  payloads.reserve(futures.size());
  for (auto& future : futures) {
    payloads.push_back(std::move(future.get().result));
  }
  *seconds = timer.ElapsedSeconds();
  return payloads;
}

bool IsSubset(const std::vector<TrajId>& subset,
              const std::vector<TrajId>& superset) {
  // Both sides are ascending (the merge contract).
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

int Run(const BenchOptions& options, uint32_t num_shards,
        const std::string& json_path) {
  std::printf("=== bench_shard: hash-partitioned repository, scatter-gather "
              "serving ===\n");
  DatasetBundle bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle.name.c_str(), bundle.data.size(),
              bundle.data.TotalPoints());
  const size_t threads = options.threads;
  const double cell_size = 100.0 / kMetersPerDegree;

  // --- Build: N shards and the 1-shard reference --------------------------
  auto sharded = BuildRepository(bundle, num_shards, threads);
  auto single = BuildRepository(bundle, 1, threads);

  WallTimer seal_timer;
  const repo::RepositorySnapshotPtr sealed = sharded->SealAll();
  PrintThroughput("ShardedRepo/" + std::to_string(num_shards) + "s", "seal",
                  sealed->NumTrajectories(), seal_timer.ElapsedSeconds());
  const repo::RepositorySnapshotPtr single_seal = single->SealAll();

  // --- Persist: SaveAll -> OpenRepository (the served seal is the
  // cold-opened one, so the round trip is on the measured path) ------------
  const std::string dir =
      std::filesystem::temp_directory_path() / "ppq_bench_shard_repo";
  std::filesystem::remove_all(dir);
  WallTimer save_timer;
  const Status saved = sharded->SaveAll(dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "SaveAll failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  PrintThroughput("ShardedRepo/" + std::to_string(num_shards) + "s", "save",
                  bundle.data.TotalPoints(), save_timer.ElapsedSeconds());
  WallTimer open_timer;
  ThreadPool open_pool(threads);
  auto opened = repo::OpenRepository(dir, &open_pool);
  if (!opened.ok()) {
    std::fprintf(stderr, "OpenRepository failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  PrintThroughput("ShardedRepo/" + std::to_string(num_shards) + "s", "open",
                  bundle.data.TotalPoints(), open_timer.ElapsedSeconds());
  std::filesystem::remove_all(dir);

  // --- Workload + serial oracle -------------------------------------------
  const Workload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 99);
  std::printf("workload: %zu mixed requests (%zu exact-mode gates)\n",
              workload.requests.size(), workload.exact.size());
  const auto raw =
      std::make_shared<const TrajectoryDataset>(std::move(bundle.data));

  // Serial unsharded oracle for gate 1 (the 1-shard repository IS the
  // unsharded compressor, so its serial engine is the unsharded answer).
  const core::QueryEngine engine(single_seal->shard(0), raw.get(), cell_size);
  std::vector<Payload> reference;
  reference.reserve(workload.requests.size());
  WallTimer serial_timer;
  for (const core::QueryRequest& request : workload.requests) {
    if (const auto* r = std::get_if<core::StrqRequest>(&request)) {
      reference.emplace_back(engine.Strq(r->query, r->mode));
    } else if (const auto* r = std::get_if<core::WindowRequest>(&request)) {
      reference.emplace_back(
          engine.WindowQuery(r->window.window, r->window.tick, r->mode));
    } else if (const auto* r = std::get_if<core::KnnRequest>(&request)) {
      reference.emplace_back(engine.NearestTrajectories(r->query, r->k));
    } else {
      const auto& tpq = std::get<core::TpqRequest>(request);
      reference.emplace_back(engine.Tpq(tpq.query, tpq.length, tpq.mode));
    }
  }
  PrintThroughput("QueryEngine", "serve", workload.requests.size(),
                  serial_timer.ElapsedSeconds());

  // --- Serve both configurations ------------------------------------------
  repo::ShardedQueryService::Options serve_options;
  serve_options.num_threads = threads;
  serve_options.raw = raw;
  serve_options.cell_size = cell_size;

  repo::ShardedQueryService single_service(single_seal, serve_options);
  double single_seconds = 0.0;
  const std::vector<Payload> single_served =
      Serve(single_service, workload, &single_seconds);
  PrintThroughput("ShardedService/1s", "serve", workload.requests.size(),
                  single_seconds);

  repo::ShardedQueryService service(*opened, serve_options);
  double seconds = 0.0;
  const std::vector<Payload> served = Serve(service, workload, &seconds);
  PrintThroughput("ShardedService/" + std::to_string(num_shards) + "s",
                  "serve", workload.requests.size(), seconds);

  // --- Gate 1: 1 shard == unsharded serial, byte for byte -----------------
  bool gate1 = true;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (!(single_served[i] == reference[i])) {
      gate1 = false;
      break;
    }
  }
  // --- Gates 2+3: exact answers shard-count invariant; local ⊇ exact ------
  bool gate2 = true;
  bool gate3 = true;
  for (size_t g = 0; g < workload.exact.size(); ++g) {
    const auto& n_exact =
        std::get<core::StrqResult>(served[workload.exact[g]]);
    const auto& one_exact =
        std::get<core::StrqResult>(single_served[workload.exact[g]]);
    if (n_exact.ids != one_exact.ids) gate2 = false;
    const auto& n_local =
        std::get<core::StrqResult>(served[workload.local[g]]);
    if (!IsSubset(n_exact.ids, n_local.ids)) gate3 = false;
  }

  const bool identical = gate1 && gate2 && gate3;
  const double qps =
      seconds > 0.0
          ? static_cast<double>(workload.requests.size()) / seconds
          : 0.0;
  const double speedup = seconds > 0.0 ? single_seconds / seconds : 0.0;
  std::printf("[shard] shards=%u threads=%zu requests=%zu seconds=%.4f "
              "qps=%.0f speedup_vs_1shard=%.2f identical_exact=%s\n",
              num_shards, threads, workload.requests.size(), seconds, qps,
              speedup, identical ? "yes" : "NO");

  PerfJson json;
  json.Begin("shard");
  json.Field("shards", static_cast<double>(num_shards));
  json.Field("threads", static_cast<double>(threads));
  json.Field("requests", static_cast<double>(workload.requests.size()));
  json.Field("seconds", seconds);
  json.Field("qps", qps);
  json.Field("speedup_vs_1shard", speedup);
  json.Text("identical_exact", identical ? "yes" : "no");
  // The run's whole metrics snapshot (serve-stage histograms incl. the
  // scatter-gather merge stage), embedded verbatim.
  json.Begin("metrics");
  json.Raw("registry", obs::Registry::Default().RenderJson());
  if (!json_path.empty() && !json.Write(json_path, "shard")) {
    std::fprintf(stderr, "bench_shard: could not write %s\n",
                 json_path.c_str());
    return 2;
  }

  if (!gate1) {
    std::fprintf(stderr, "ERROR: 1-shard repository diverged from the "
                         "serial unsharded engine\n");
  }
  if (!gate2) {
    std::fprintf(stderr, "ERROR: exact-mode answers changed with the shard "
                         "count\n");
  }
  if (!gate3) {
    std::fprintf(stderr, "ERROR: local-search lost exact results "
                         "(recall < 1 under sharding)\n");
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  ppq::bench::BenchOptions options = ppq::bench::ParseArgs(argc, argv);
  const std::string json_path = ppq::bench::ParseJsonPath(argc, argv);
  uint32_t shards = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = static_cast<uint32_t>(
          std::strtoul(arg.substr(9).c_str(), nullptr, 10));
      if (shards == 0) shards = 1;
    }
  }
  return ppq::bench::Run(options, shards, json_path);
}
