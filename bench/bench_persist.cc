/// \file bench_persist.cc
/// Durable-repository benchmark for the snapshot container: compress a
/// Porto-like workload with PPQ-A, Seal(), Save() the snapshot, cold-open
/// it with OpenSnapshot() (I/O accounted through a storage::PageManager),
/// and serve a mixed STRQ / window / k-NN workload from the LOADED
/// snapshot — verified byte-identical against the in-memory seal before
/// anything is reported.
///
/// Output: the shared [throughput] lines (phase=encode/save/open/serve)
/// plus one [persist] line:
///   [persist] bytes=… save_ms=… open_ms=… pages_written=… pages_read=…
///
/// Two extra flags support the CI format-compatibility gate (a snapshot
/// written by the previous commit's binary must keep opening):
///   --save=<path>   compress + seal + Save, then exit
///   --check=<path>  OpenSnapshot and serve the standard workload from it,
///                   exit nonzero if the file fails to open or serves
///                   nothing

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench/bench_common.h"
#include "common/geo.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/query_service.h"
#include "core/serialization.h"
#include "storage/page_manager.h"

namespace ppq::bench {
namespace {

struct Workload {
  std::vector<core::QuerySpec> strq;
  std::vector<core::WindowSpec> windows;
  std::vector<core::QuerySpec> knn;
};

Workload MakeWorkload(const TrajectoryDataset& data, size_t queries,
                      uint64_t seed) {
  Workload w;
  Rng rng(seed);
  w.strq = core::SampleQueries(data, queries, &rng);
  for (const core::QuerySpec& q :
       core::SampleQueries(data, queries / 2, &rng)) {
    const double half = rng.Uniform(0.001, 0.01);
    w.windows.push_back({core::Window{q.position.x - half,
                                      q.position.y - half,
                                      q.position.x + half,
                                      q.position.y + half},
                         q.tick});
  }
  w.knn = core::SampleQueries(data, queries / 4, &rng);
  return w;
}

constexpr size_t kKnnK = 8;

struct MixedResults {
  std::vector<core::StrqResult> strq;
  std::vector<core::StrqResult> windows;
  std::vector<std::vector<core::Neighbor>> knn;

  bool operator==(const MixedResults& o) const {
    return strq == o.strq && windows == o.windows && knn == o.knn;
  }
  size_t Hits() const {
    size_t hits = 0;
    for (const auto& r : strq) hits += r.ids.size();
    for (const auto& r : windows) hits += r.ids.size();
    for (const auto& r : knn) hits += r.size();
    return hits;
  }
};

MixedResults Serve(core::QueryService& service, const Workload& w) {
  std::vector<core::QueryRequest> requests;
  requests.reserve(w.strq.size() + w.windows.size() + w.knn.size());
  for (const auto& q : w.strq) {
    requests.push_back(core::StrqRequest{q, core::StrqMode::kLocalSearch});
  }
  for (const auto& win : w.windows) {
    requests.push_back(core::WindowRequest{win, core::StrqMode::kLocalSearch});
  }
  for (const auto& q : w.knn) requests.push_back(core::KnnRequest{q, kKnnK});

  auto futures = service.SubmitBatch(std::move(requests));
  MixedResults r;
  size_t i = 0;
  for (size_t n = 0; n < w.strq.size(); ++n) {
    r.strq.push_back(std::move(
        std::get<core::StrqResult>(futures[i++].get().result)));
  }
  for (size_t n = 0; n < w.windows.size(); ++n) {
    r.windows.push_back(std::move(
        std::get<core::StrqResult>(futures[i++].get().result)));
  }
  for (size_t n = 0; n < w.knn.size(); ++n) {
    r.knn.push_back(std::move(
        std::get<std::vector<core::Neighbor>>(futures[i++].get().result)));
  }
  return r;
}

core::SnapshotPtr BuildSnapshot(const BenchOptions& options,
                                DatasetBundle* bundle) {
  *bundle = MakePortoBundle(options);
  std::printf("dataset: %s, %zu trajectories, %zu points\n",
              bundle->name.c_str(), bundle->data.size(),
              bundle->data.TotalPoints());
  MethodSetup setup;
  setup.mode = core::QuantizationMode::kErrorBounded;
  auto method = MakeCompressor("PPQ-A", *bundle, setup);
  CompressTimed(*method, bundle->data);
  return method->Seal();
}

core::QueryService::Options ServeOptions(
    std::shared_ptr<const TrajectoryDataset> data, size_t threads) {
  core::QueryService::Options options;
  options.num_threads = threads == 0 ? 1 : threads;
  options.raw = std::move(data);
  options.cell_size = 100.0 / kMetersPerDegree;
  return options;
}

int RunSaveOnly(const BenchOptions& options, const std::string& path) {
  DatasetBundle bundle;
  const core::SnapshotPtr snapshot = BuildSnapshot(options, &bundle);
  const Status saved = snapshot->Save(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved snapshot to %s\n", path.c_str());
  return 0;
}

int RunCheck(const BenchOptions& options, const std::string& path) {
  auto snapshot = core::OpenSnapshot(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "FORMAT BREAK: cannot open %s: %s\n", path.c_str(),
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("opened %s: method=%s trajectories=%zu codewords=%zu\n",
              path.c_str(), (*snapshot)->name().c_str(),
              (*snapshot)->NumTrajectories(), (*snapshot)->NumCodewords());
  if ((*snapshot)->NumTrajectories() == 0) {
    std::fprintf(stderr, "FORMAT BREAK: snapshot opened empty\n");
    return 1;
  }
  // Serve the standard workload from the loaded snapshot; the dataset is
  // regenerated deterministically from the same options, so a healthy
  // snapshot must produce hits.
  DatasetBundle bundle = MakePortoBundle(options);
  const Workload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 7);
  const auto raw = std::make_shared<const TrajectoryDataset>(
      std::move(bundle.data));
  core::QueryService service(*snapshot, ServeOptions(raw, options.threads));
  const MixedResults results = Serve(service, workload);
  std::printf("served %zu hits from the loaded snapshot\n", results.Hits());
  if (results.Hits() == 0) {
    std::fprintf(stderr, "FORMAT BREAK: loaded snapshot served nothing\n");
    return 1;
  }
  std::printf("format compatibility check: OK\n");
  return 0;
}

int Run(const BenchOptions& options, const std::string& path) {
  std::printf("=== bench_persist: save + cold open + serve ===\n");
  DatasetBundle bundle;
  const core::SnapshotPtr sealed = BuildSnapshot(options, &bundle);
  const size_t points = bundle.data.TotalPoints();

  // Save, routed through a pager so the on-disk footprint is page-exact.
  storage::PageManager write_pager;
  WallTimer save_timer;
  const Status saved = sealed->Save(path, &write_pager);
  const double save_seconds = save_timer.ElapsedSeconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  PrintThroughput("PPQ-A", "save", points, save_seconds);

  // Cold open in "another process": nothing shared with the writer but
  // the file. The pager reports the page-granular read cost.
  storage::PageManager read_pager;
  WallTimer open_timer;
  auto loaded = core::OpenSnapshot(path, &read_pager);
  const double open_seconds = open_timer.ElapsedSeconds();
  if (!loaded.ok()) {
    std::fprintf(stderr, "open failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  PrintThroughput("PPQ-A", "open", points, open_seconds);
  std::printf("[persist] bytes=%zu save_ms=%.3f open_ms=%.3f "
              "pages_written=%llu pages_read=%llu\n",
              write_pager.TotalBytes(), save_seconds * 1e3,
              open_seconds * 1e3,
              static_cast<unsigned long long>(
                  write_pager.io_stats().pages_written),
              static_cast<unsigned long long>(
                  read_pager.io_stats().pages_read));

  // Serve from the LOADED snapshot and require byte-identical results to
  // the in-memory seal — cold-start throughput only counts if the answers
  // are exactly the ones the writer would have served.
  const Workload workload =
      MakeWorkload(bundle.data, options.queries, options.seed + 7);
  const auto raw = std::make_shared<const TrajectoryDataset>(
      std::move(bundle.data));
  core::QueryService sealed_service(sealed,
                                    ServeOptions(raw, options.threads));
  core::QueryService loaded_service(*loaded,
                                    ServeOptions(raw, options.threads));
  const MixedResults reference = Serve(sealed_service, workload);

  WallTimer serve_timer;
  const MixedResults results = Serve(loaded_service, workload);
  const double serve_seconds = serve_timer.ElapsedSeconds();
  const size_t evaluations =
      workload.strq.size() + workload.windows.size() + workload.knn.size();
  PrintThroughput("PPQ-A/loaded", "serve", evaluations, serve_seconds);

  if (!(results == reference)) {
    std::printf("ERROR: loaded snapshot diverged from the in-memory seal\n");
    return 1;
  }
  std::printf("loaded snapshot serves byte-identical results "
              "(%zu hits)\n", results.Hits());
  std::remove(path.c_str());
  return 0;
}

}  // namespace
}  // namespace ppq::bench

int main(int argc, char** argv) {
  const ppq::bench::BenchOptions options = ppq::bench::ParseArgs(argc, argv);
  std::string save_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--save=", 0) == 0) save_path = arg.substr(7);
    if (arg.rfind("--check=", 0) == 0) check_path = arg.substr(8);
  }
  if (!save_path.empty()) return ppq::bench::RunSaveOnly(options, save_path);
  if (!check_path.empty()) return ppq::bench::RunCheck(options, check_path);
  return ppq::bench::Run(options, "/tmp/ppq_bench_persist.snapshot");
}
